//! Classical operations on tree automata (the Section 3 substrate,
//! following \[4\]): determinization, boolean combinations, complement
//! and emptiness. These are not needed by the two-phase evaluator itself
//! (residual programs already determinize implicitly) but complete the
//! automata toolbox — e.g. for the boolean document-filtering queries of
//! \[12, 3\] the introduction discusses.

use crate::automata::{BuKey, Dta, Nta, State, Symbol};
use arb_logic::{FxHashMap, FxHashSet};

/// Determinizes a nondeterministic bottom-up automaton by the subset
/// construction, restricted to the *reachable* subsets over the given
/// alphabet (symbols `0..n_symbols`).
///
/// The blow-up is exponential in the worst case — which is exactly why
/// the production path represents state sets as residual programs and
/// computes transitions lazily (paper Section 4).
pub fn determinize(nta: &Nta, n_symbols: Symbol) -> Dta {
    // Subsets are sorted state vectors, interned densely.
    let mut subsets: Vec<Vec<State>> = Vec::new();
    let mut index: FxHashMap<Vec<State>, State> = FxHashMap::default();
    let mut intern = |s: Vec<State>, subsets: &mut Vec<Vec<State>>| -> State {
        if let Some(&i) = index.get(&s) {
            return i;
        }
        let i = subsets.len() as State;
        index.insert(s.clone(), i);
        subsets.push(s);
        i
    };

    let mut delta: FxHashMap<BuKey, State> = FxHashMap::default();
    // Seed: leaf transitions.
    let mut frontier: Vec<State> = Vec::new();
    for sym in 0..n_symbols {
        let mut out: Vec<State> = nta.step(None, None, sym).to_vec();
        out.sort_unstable();
        out.dedup();
        let id = intern(out, &mut subsets);
        delta.insert((None, None, sym), id);
        if !frontier.contains(&id) {
            frontier.push(id);
        }
    }
    // Close under transitions (children drawn from known subsets or ⊥).
    let mut known: Vec<State> = frontier.clone();
    let mut head = 0;
    while head < known.len() {
        // Iterate pairs (a, b) where at least one is the newly added one.
        let _current = known[head];
        head += 1;
        let opts: Vec<Option<State>> = std::iter::once(None)
            .chain(known.iter().map(|&s| Some(s)))
            .collect();
        let mut added = Vec::new();
        for &s1 in &opts {
            for &s2 in &opts {
                if s1.is_none() && s2.is_none() {
                    continue; // leaf case already seeded
                }
                for sym in 0..n_symbols {
                    let key = (s1, s2, sym);
                    if delta.contains_key(&key) {
                        continue;
                    }
                    let mut out: FxHashSet<State> = FxHashSet::default();
                    let set1: Vec<Option<State>> = match s1 {
                        None => vec![None],
                        Some(i) => subsets[i as usize].iter().map(|&q| Some(q)).collect(),
                    };
                    let set2: Vec<Option<State>> = match s2 {
                        None => vec![None],
                        Some(i) => subsets[i as usize].iter().map(|&q| Some(q)).collect(),
                    };
                    for &q1 in &set1 {
                        for &q2 in &set2 {
                            out.extend(nta.step(q1, q2, sym).iter().copied());
                        }
                    }
                    let mut out: Vec<State> = out.into_iter().collect();
                    out.sort_unstable();
                    let id = intern(out, &mut subsets);
                    delta.insert(key, id);
                    if !known.contains(&id) && !added.contains(&id) {
                        added.push(id);
                    }
                }
            }
        }
        known.extend(added);
    }

    let accepting: Vec<State> = subsets
        .iter()
        .enumerate()
        .filter(|(_, s)| s.iter().any(|q| nta.accepting.contains(q)))
        .map(|(i, _)| i as State)
        .collect();
    Dta {
        n_states: subsets.len() as u32,
        accepting,
        delta,
    }
}

/// The product of two deterministic automata with a boolean combination
/// of their acceptance conditions. State `(q1, q2)` is encoded as
/// `q1 * b.n_states + q2`.
pub fn product(a: &Dta, b: &Dta, accept: impl Fn(bool, bool) -> bool) -> Dta {
    let enc = |q1: State, q2: State| q1 * b.n_states + q2;
    let mut delta: FxHashMap<BuKey, State> = FxHashMap::default();
    for (&(s1a, s2a, sym), &qa) in &a.delta {
        for (&(s1b, s2b, sym_b), &qb) in &b.delta {
            if sym != sym_b {
                continue;
            }
            // Child pseudo-states must align structurally.
            let s1 = match (s1a, s1b) {
                (None, None) => None,
                (Some(x), Some(y)) => Some(enc(x, y)),
                _ => continue,
            };
            let s2 = match (s2a, s2b) {
                (None, None) => None,
                (Some(x), Some(y)) => Some(enc(x, y)),
                _ => continue,
            };
            delta.insert((s1, s2, sym), enc(qa, qb));
        }
    }
    let mut accepting = Vec::new();
    for q1 in 0..a.n_states {
        for q2 in 0..b.n_states {
            if accept(a.accepting.contains(&q1), b.accepting.contains(&q2)) {
                accepting.push(enc(q1, q2));
            }
        }
    }
    Dta {
        n_states: a.n_states * b.n_states,
        accepting,
        delta,
    }
}

/// Intersection of two deterministic automata.
pub fn intersect(a: &Dta, b: &Dta) -> Dta {
    product(a, b, |x, y| x && y)
}

/// Union of two deterministic automata.
pub fn union(a: &Dta, b: &Dta) -> Dta {
    product(a, b, |x, y| x || y)
}

/// Complement of a *complete* deterministic automaton: flip acceptance.
pub fn complement(a: &Dta) -> Dta {
    Dta {
        n_states: a.n_states,
        accepting: (0..a.n_states)
            .filter(|q| !a.accepting.contains(q))
            .collect(),
        delta: a.delta.clone(),
    }
}

/// Emptiness test: does the automaton accept *some* tree? Computes the
/// set of states reachable by any tree bottom-up.
pub fn is_empty(a: &Dta) -> bool {
    let mut reachable: FxHashSet<State> = FxHashSet::default();
    let mut changed = true;
    while changed {
        changed = false;
        for (&(s1, s2, _sym), &q) in &a.delta {
            let ok1 = s1.is_none_or(|s| reachable.contains(&s));
            let ok2 = s2.is_none_or(|s| reachable.contains(&s));
            if ok1 && ok2 && reachable.insert(q) {
                changed = true;
            }
        }
    }
    !reachable.iter().any(|q| a.accepting.contains(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::{BinaryTree, LabelId, NodeId, TreeBuilder};

    /// Symbols: 0 = 'a', 1 = 'b'.
    fn tree(ops: &[(bool, u16)]) -> BinaryTree {
        let mut b = TreeBuilder::new();
        b.open(LabelId(300));
        for &(open, l) in ops {
            if open {
                b.open(LabelId(300 + l));
            } else {
                b.close();
            }
        }
        b.close();
        b.finish().unwrap()
    }

    fn symf(t: &BinaryTree) -> impl Fn(NodeId) -> Symbol + '_ {
        |v| (t.label(v).0 - 300) as Symbol
    }

    /// An NTA guessing whether some node is labeled 'b' (symbol 1):
    /// state 1 = "seen b".
    fn some_b() -> Nta {
        let mut delta: FxHashMap<BuKey, Vec<State>> = FxHashMap::default();
        for sym in 0..2u32 {
            let self_seen = sym == 1;
            let states = |s: Option<State>| match s {
                None => vec![None],
                Some(_) => vec![Some(0), Some(1)],
            };
            let _ = states;
            for s1 in [None, Some(0), Some(1)] {
                for s2 in [None, Some(0), Some(1)] {
                    let seen = self_seen || s1 == Some(1) || s2 == Some(1);
                    delta.insert((s1, s2, sym), vec![u32::from(seen)]);
                }
            }
        }
        Nta {
            n_states: 2,
            accepting: vec![1],
            delta,
        }
    }

    #[test]
    fn determinize_preserves_language() {
        let nta = some_b();
        let dta = determinize(&nta, 2);
        let cases = [
            (tree(&[]), false),
            (tree(&[(true, 1), (false, 0)]), true),
            (tree(&[(true, 0), (false, 0), (true, 0), (false, 0)]), false),
            (tree(&[(true, 0), (true, 1), (false, 0), (false, 0)]), true),
        ];
        for (t, expect) in cases {
            let f = symf(&t);
            assert_eq!(nta.accepts(&t, &f), expect);
            assert_eq!(dta.accepts(&t, &f), expect, "determinized");
        }
    }

    #[test]
    fn boolean_algebra() {
        let has_b = determinize(&some_b(), 2);
        let no_b = complement(&has_b);
        let both = intersect(&has_b, &no_b); // empty language
        let either = union(&has_b, &no_b); // universal language

        let t1 = tree(&[(true, 1), (false, 0)]);
        let t2 = tree(&[(true, 0), (false, 0)]);
        for t in [&t1, &t2] {
            let f = symf(t);
            assert!(!both.accepts(t, &f));
            assert!(either.accepts(t, &f));
            assert_ne!(has_b.accepts(t, &f), no_b.accepts(t, &f));
        }
        assert!(is_empty(&both));
        assert!(!is_empty(&either));
        assert!(!is_empty(&has_b));
    }

    #[test]
    fn emptiness_of_unsatisfiable() {
        // Accepting state unreachable: requires children in state 9.
        let mut delta: FxHashMap<BuKey, State> = FxHashMap::default();
        delta.insert((None, None, 0), 0);
        delta.insert((Some(9), None, 0), 1);
        let dta = Dta {
            n_states: 2,
            accepting: vec![1],
            delta,
        };
        assert!(is_empty(&dta));
    }
}
