//! Algorithm 4.6 — two-phase query evaluation — over in-memory trees.
//!
//! 1. Compute the run ρ_A of the bottom-up automaton `A` (lazily, via
//!    `ComputeReachableStates`) starting at the leaves with residual
//!    program ⊥.
//! 2. At the root, extract the true predicates `TruePreds(ρ_A(Root))`.
//! 3. Starting with those as `s_B`, compute the run ρ_B of the top-down
//!    automaton `B` (lazily, via `ComputeTruePreds`), which assigns the
//!    set of true predicates to each node.
//!
//! The disk-based variant over `.arb` scans (which streams ρ_A through a
//! temporary state file, paper footnote 12) lives in `arb-engine`; both
//! share [`QueryAutomata`].

use crate::lazy::QueryAutomata;
use crate::stats::EvalStats;
use arb_logic::{Atom, PredSetId, ProgramId};
use arb_tmnf::{CoreProgram, PredId};
use arb_tree::{BinaryTree, NodeId, NodeSet};
use std::time::{Duration, Instant};

/// Result of a two-phase evaluation on an in-memory tree: the full
/// predicate annotation of every node (as interned predicate-set ids)
/// plus statistics.
pub struct TreeEvalResult {
    /// The automata (interners allow decoding the per-node states).
    pub automata: QueryAutomata,
    /// ρ_A: phase-1 state (residual program id) per node, preorder.
    pub rho_a: Vec<ProgramId>,
    /// ρ_B: phase-2 state (true-predicate set id) per node, preorder.
    pub rho_b: Vec<PredSetId>,
    /// Statistics (times, transitions, memory).
    pub stats: EvalStats,
}

impl TreeEvalResult {
    /// True if predicate `p` holds at node `v` (Theorem 4.1).
    pub fn holds(&self, p: PredId, v: NodeId) -> bool {
        self.automata
            .predsets
            .get(self.rho_b[v.ix()])
            .contains(Atom::local(p))
    }

    /// The set of nodes where predicate `p` holds.
    pub fn extent(&self, p: PredId) -> NodeSet {
        let mut s = NodeSet::new(self.rho_b.len());
        for (ix, &ps) in self.rho_b.iter().enumerate() {
            if self.automata.predsets.get(ps).contains(Atom::local(p)) {
                s.insert(NodeId(ix as u32));
            }
        }
        s
    }

    /// All predicates holding at a node.
    pub fn preds_at(&self, v: NodeId) -> Vec<PredId> {
        self.automata
            .predsets
            .get(self.rho_b[v.ix()])
            .atoms()
            .iter()
            .map(|a| a.pred())
            .collect()
    }
}

/// The borrowed-automata form of a two-phase run: both per-node state
/// assignments plus statistics, **without** owning the automata that
/// interned them. The state ids are only meaningful against the
/// `QueryAutomata` the run stepped (see [`evaluate_tree_with`]).
pub struct TreeEvalRun {
    /// ρ_A: phase-1 state (residual program id) per node, preorder.
    pub rho_a: Vec<ProgramId>,
    /// ρ_B: phase-2 state (true-predicate set id) per node, preorder.
    pub rho_b: Vec<PredSetId>,
    /// Statistics (times, transitions, memory). `automata_builds` /
    /// `automata_reused` are left 0 — the caller that managed the
    /// automata's lifecycle fills them in.
    pub stats: EvalStats,
}

/// Evaluates a strict TMNF program on an in-memory tree by Algorithm 4.6,
/// **stepping a caller-provided automata** instead of constructing one.
///
/// This is the reusable-lifecycle kernel: `qa` must have been built (via
/// [`QueryAutomata::new`] or an [`AutomataPool`](crate::AutomataPool))
/// for *this* `prog`, and may arrive warm from earlier evaluations — its
/// memoized δ tables are consulted as-is, so a warm rerun reports ~0
/// lazily computed transitions. The phase-1 sweep runs in reverse
/// preorder (children before parents — the in-memory equivalent of the
/// backward linear scan of Proposition 5.1); phase 2 runs in preorder
/// (the forward scan). Transition counts in the returned stats are this
/// run's deltas, regardless of what the automata counted before.
pub fn evaluate_tree_with(
    prog: &CoreProgram,
    tree: &BinaryTree,
    qa: &mut QueryAutomata,
) -> TreeEvalRun {
    let n = tree.len();
    assert!(n > 0, "cannot evaluate a query on an empty tree");
    let (bu0, td0) = (qa.bu_transitions, qa.td_transitions);

    // --- Phase 1: bottom-up run of A -------------------------------------
    let t1 = Instant::now();
    let mut rho_a: Vec<ProgramId> = vec![ProgramId(0); n];
    for ix in (0..n as u32).rev() {
        let v = NodeId(ix);
        let s1 = tree.first_child(v).map(|c| rho_a[c.ix()]);
        let s2 = tree.second_child(v).map(|c| rho_a[c.ix()]);
        rho_a[v.ix()] = qa.bottom_up(s1, s2, tree.info(v));
    }
    let phase1_time = t1.elapsed();

    // --- Phase 2: top-down run of B ---------------------------------------
    let t2 = Instant::now();
    let mut rho_b: Vec<PredSetId> = vec![PredSetId(0); n];
    rho_b[0] = qa.start_state(rho_a[0]);
    for ix in 0..n as u32 {
        let v = NodeId(ix);
        let q = rho_b[v.ix()];
        if let Some(c) = tree.first_child(v) {
            rho_b[c.ix()] = qa.top_down(q, rho_a[c.ix()], 1);
        }
        if let Some(c) = tree.second_child(v) {
            rho_b[c.ix()] = qa.top_down(q, rho_a[c.ix()], 2);
        }
    }
    let phase2_time = t2.elapsed();

    // --- Statistics --------------------------------------------------------
    let selected = match prog.query_preds() {
        [] => 0,
        qs => rho_b
            .iter()
            .filter(|&&ps| {
                let set = qa.predsets.get(ps);
                qs.iter().any(|&q| set.contains(Atom::local(q)))
            })
            .count() as u64,
    };
    let stats = EvalStats {
        idb_count: prog.pred_count(),
        rule_count: prog.rule_count(),
        phase1_time,
        phase1_transitions: qa.bu_transitions - bu0,
        phase2_time,
        phase2_transitions: qa.td_transitions - td0,
        selected,
        memory_bytes: qa.memory_bytes(),
        bu_states: qa.bu_state_count(),
        td_states: qa.td_state_count(),
        nodes: n as u64,
        backward_scans: 1,
        forward_scans: 1,
        sta_encoded_bytes: 0,
        sta_decoded_bytes: 0,
        db_format: 0,
        blocks_decoded: 0,
        batch_size: 0,
        queue_wait: Duration::ZERO,
        automata_builds: 0,
        automata_reused: 0,
        automata_build_time: Duration::ZERO,
        interning: qa.intern_stats(),
        dirty_nodes: 0,
        retained_sta_blocks: 0,
        refreshes: 0,
    };

    TreeEvalRun {
        rho_a,
        rho_b,
        stats,
    }
}

/// Evaluates a strict TMNF program on an in-memory tree by Algorithm 4.6,
/// building a fresh automata pair for the run. One-shot convenience over
/// [`evaluate_tree_with`]; callers that evaluate repeatedly should keep
/// the automata (or a pool) alive and use the `_with` kernel.
pub fn evaluate_tree(prog: &CoreProgram, tree: &BinaryTree) -> TreeEvalResult {
    let t = Instant::now();
    let mut qa = QueryAutomata::new(prog);
    let build_time = t.elapsed();
    let run = evaluate_tree_with(prog, tree, &mut qa);
    let mut stats = run.stats;
    stats.automata_builds = 1;
    stats.automata_build_time = build_time;
    TreeEvalResult {
        automata: qa,
        rho_a: run.rho_a,
        rho_b: run.rho_b,
        stats,
    }
}

/// Result of a batched in-memory evaluation: the merged-program
/// evaluation plus the per-input query predicates needed to demultiplex.
pub struct BatchTreeEvalResult {
    /// The evaluation of the merged program (one phase-1 sweep, one
    /// phase-2 sweep for the entire batch).
    pub result: TreeEvalResult,
    /// For each input program, the merged ids of its query predicates.
    pub query_preds: Vec<Vec<PredId>>,
}

impl BatchTreeEvalResult {
    /// The set of nodes selected by input query `i` (union over its
    /// query predicates).
    pub fn selected(&self, i: usize) -> NodeSet {
        let mut s = NodeSet::new(self.result.rho_b.len());
        for (ix, &ps) in self.result.rho_b.iter().enumerate() {
            let set = self.result.automata.predsets.get(ps);
            if self.query_preds[i]
                .iter()
                .any(|&q| set.contains(Atom::local(q)))
            {
                s.insert(NodeId(ix as u32));
            }
        }
        s
    }
}

/// Evaluates a batch of strict TMNF programs on an in-memory tree with
/// **one** shared two-phase run: the programs are merged at the IR level
/// ([`arb_tmnf::merge_programs`]) and the merged program is evaluated by
/// [`evaluate_tree`]. The k queries amortize both sweeps.
pub fn evaluate_tree_batch(progs: &[&CoreProgram], tree: &BinaryTree) -> BatchTreeEvalResult {
    let merged = arb_tmnf::merge_programs(progs);
    let result = evaluate_tree(&merged.program, tree);
    BatchTreeEvalResult {
        result,
        query_preds: merged.query_preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tmnf::{naive, normalize, parse_program, programs};
    use arb_tree::{LabelTable, TreeBuilder};

    /// Cross-checks the two-phase result against the naive fixpoint on
    /// every (predicate, node) pair — Theorem 4.1.
    fn assert_matches_naive(src: &str, build: impl FnOnce(&mut LabelTable) -> BinaryTree) {
        let mut lt = LabelTable::new();
        let ast = parse_program(src, &mut lt).unwrap();
        let prog = normalize(&ast);
        let tree = build(&mut lt);
        let two = evaluate_tree(&prog, &tree);
        let oracle = naive::evaluate(&prog, &tree);
        for p in 0..prog.pred_count() as PredId {
            for v in tree.nodes() {
                assert_eq!(
                    two.holds(p, v),
                    oracle.holds(p, v),
                    "pred {} at node {}",
                    prog.pred_name(p),
                    v.0
                );
            }
        }
    }

    #[test]
    fn example_4_3_matches_naive() {
        assert_matches_naive(programs::EXAMPLE_4_3, |lt| {
            let a = lt.intern("a").unwrap();
            let mut b = TreeBuilder::new();
            b.open(a);
            b.open(a);
            b.open(a);
            b.close();
            b.close();
            b.close();
            b.finish().unwrap()
        });
    }

    #[test]
    fn even_odd_matches_naive() {
        assert_matches_naive(programs::EVEN_ODD, |lt| {
            let a = lt.get("a").unwrap_or_else(|| lt.intern("a").unwrap());
            let b = lt.intern("b").unwrap();
            let mut tb = TreeBuilder::new();
            tb.open(b);
            tb.leaf(a);
            tb.open(b);
            tb.leaf(a);
            tb.leaf(a);
            tb.leaf(b);
            tb.close();
            tb.open(a);
            tb.leaf(a);
            tb.close();
            tb.close();
            tb.finish().unwrap()
        });
    }

    #[test]
    fn upward_and_sideways_rules_match_naive() {
        assert_matches_naive(
            "Mark :- V.Label[m];\n\
             Up :- Mark.invNextSibling*.invFirstChild;\n\
             Side :- Mark.NextSibling+;\n\
             Q :- Up, Side;",
            |lt| {
                let m = lt.get("m").unwrap_or_else(|| lt.intern("m").unwrap());
                let x = lt.intern("x").unwrap();
                let mut tb = TreeBuilder::new();
                tb.open(x);
                tb.leaf(m);
                tb.open(x);
                tb.leaf(x);
                tb.leaf(m);
                tb.close();
                tb.leaf(x);
                tb.close();
                tb.finish().unwrap()
            },
        );
    }

    /// A warm automata (reset between runs) must reproduce the fresh
    /// run's state assignments exactly, at zero lazily computed
    /// transitions the second time.
    #[test]
    fn warm_automata_rerun_is_identical() {
        let mut lt = LabelTable::new();
        let ast = parse_program(programs::EVEN_ODD, &mut lt).unwrap();
        let prog = normalize(&ast);
        let a = lt.get("a").unwrap_or_else(|| lt.intern("a").unwrap());
        let b = lt.intern("b").unwrap();
        let mut tb = TreeBuilder::new();
        tb.open(b);
        tb.leaf(a);
        tb.open(b);
        tb.leaf(a);
        tb.leaf(b);
        tb.close();
        tb.close();
        let tree = tb.finish().unwrap();

        let pool = crate::AutomataPool::new();
        let mut qa = pool.take(&prog);
        let cold = evaluate_tree_with(&prog, &tree, &mut qa);
        pool.put(qa);
        assert!(cold.stats.phase1_transitions > 0);

        let mut qa = pool.take(&prog);
        let warm = evaluate_tree_with(&prog, &tree, &mut qa);
        assert_eq!(warm.rho_a, cold.rho_a);
        assert_eq!(warm.rho_b, cold.rho_b);
        assert_eq!(warm.stats.selected, cold.stats.selected);
        assert_eq!(warm.stats.phase1_transitions, 0, "fully memoized rerun");
        assert_eq!(warm.stats.phase2_transitions, 0);
        assert_eq!((pool.builds(), pool.reused()), (1, 1));
    }

    #[test]
    fn selected_count_and_stats() {
        let mut lt = LabelTable::new();
        let ast = parse_program("QUERY :- V.Label[a], Leaf;", &mut lt).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());
        let a = lt.get("a").unwrap();
        let b = lt.intern("b").unwrap();
        let mut tb = TreeBuilder::new();
        tb.open(b);
        tb.leaf(a);
        tb.leaf(b);
        tb.leaf(a);
        tb.close();
        let tree = tb.finish().unwrap();
        let res = evaluate_tree(&prog, &tree);
        assert_eq!(res.stats.selected, 2);
        assert_eq!(res.stats.nodes, 4);
        assert!(res.stats.phase1_transitions > 0);
        assert!(res.stats.bu_states > 0);
        let q = prog.pred_id("QUERY").unwrap();
        assert_eq!(res.extent(q).count(), 2);
    }
}
