//! Parallel bottom-up evaluation (the paper's Section 6.2 case study).
//!
//! "Tree automata (working on binary trees) naturally admit parallel
//! processing": computations in distinct subtrees are completely
//! independent. This module splits a (reasonably balanced) binary tree at
//! a frontier of subtree roots, runs the phase-1 bottom-up automaton on
//! the subtrees in parallel worker threads — each with its own lazy
//! transition tables — and merges the workers' interned states back into
//! the master automata before finishing the spine sequentially.
//!
//! Phase 2 parallelizes symmetrically: the spine is annotated first, then
//! workers descend the frontier subtrees top-down. On balanced trees
//! (e.g. the ACGT-infix encoding) this yields the `O(log n)`
//! parallel-time regular-expression matching the paper describes; on
//! degenerate right-deep trees (ACGT-flat) no useful frontier exists and
//! evaluation falls back to sequential.

use crate::frontier::SubtreeIndex;
use crate::lazy::{AutomataPool, InternStats, QueryAutomata};
use crate::stats::EvalStats;
use crate::twophase::{TreeEvalResult, TreeEvalRun};
use arb_logic::{Atom, PredSetId, ProgramId};
use arb_tmnf::CoreProgram;
use arb_tree::{BinaryTree, NodeId};
use std::time::{Duration, Instant};

/// Evaluates a program with the phase-1 bottom-up run parallelized over
/// `threads` workers, building a fresh master automata and per-worker
/// automata for the run. One-shot convenience over
/// [`evaluate_tree_parallel_with`]; callers that evaluate repeatedly
/// should keep an [`AutomataPool`] alive across runs instead.
pub fn evaluate_tree_parallel(
    prog: &CoreProgram,
    tree: &BinaryTree,
    threads: usize,
) -> TreeEvalResult {
    let pool = AutomataPool::new();
    let mut qa = pool.take(prog);
    let run = evaluate_tree_parallel_with(prog, tree, threads, &mut qa, &pool);
    let mut stats = run.stats;
    stats.automata_builds = pool.builds();
    stats.automata_reused = pool.reused();
    stats.automata_build_time = pool.build_time();
    TreeEvalResult {
        automata: qa,
        rho_a: run.rho_a,
        rho_b: run.rho_b,
        stats,
    }
}

/// Evaluates a program with both phases parallelized over a subtree
/// frontier, **stepping a caller-provided master automata** and drawing
/// per-worker automata from `pool` (returned warm when the run ends).
/// Produces the same state assignments as
/// [`crate::twophase::evaluate_tree_with`] (worker states re-interned
/// into the master). `qa` and every automata in `pool` must have been
/// built for *this* `prog`; `stats.automata_builds`/`automata_reused`
/// are left 0 for the lifecycle owner to fill from pool counter deltas.
pub fn evaluate_tree_parallel_with(
    prog: &CoreProgram,
    tree: &BinaryTree,
    threads: usize,
    qa: &mut QueryAutomata,
    pool: &AutomataPool,
) -> TreeEvalRun {
    let n = tree.len();
    assert!(n > 0, "cannot evaluate a query on an empty tree");
    // The upper clamp keeps absurd requests from allocating per-worker
    // state for millions of threads (or overflowing `threads * 4`).
    let threads = threads.clamp(1, 1024);
    let idx = SubtreeIndex::from_tree(tree);
    let roots: Vec<NodeId> = idx.frontier(threads * 4).into_iter().map(NodeId).collect();

    let t1 = Instant::now();
    let (bu0, td0) = (qa.bu_transitions, qa.td_transitions);
    let mut rho_a: Vec<ProgramId> = vec![ProgramId(u32::MAX); n];
    let mut worker_transitions = 0u64;
    let mut worker_intern = InternStats::default();

    // Worker result: per-subtree local state ids plus the worker's whole
    // automata — the master remaps through the worker's program table
    // directly, so nothing is cloned per subtree.
    type SubtreeOut = (NodeId, Vec<u32>);
    type WorkerOut = (Vec<SubtreeOut>, QueryAutomata);

    let results: Vec<WorkerOut> = crossbeam::thread::scope(|scope| {
        let chunks: Vec<Vec<NodeId>> = {
            // Round-robin the frontier subtrees over the workers.
            let mut cs: Vec<Vec<NodeId>> = vec![Vec::new(); threads];
            for (i, &r) in roots.iter().enumerate() {
                cs[i % threads].push(r);
            }
            cs
        };
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|mine| {
                let idx = &idx;
                scope.spawn(move |_| {
                    let mut out: Vec<SubtreeOut> = Vec::new();
                    let mut wqa = pool.take(prog);
                    for root in mine {
                        let lo = root.0;
                        let hi = idx.end(root.0);
                        let mut local: Vec<u32> = vec![u32::MAX; (hi - lo) as usize];
                        for ix in (lo..hi).rev() {
                            let v = NodeId(ix);
                            let s1 = tree
                                .first_child(v)
                                .map(|c| ProgramId(local[(c.0 - lo) as usize]));
                            let s2 = tree
                                .second_child(v)
                                .map(|c| ProgramId(local[(c.0 - lo) as usize]));
                            local[(ix - lo) as usize] = wqa.bottom_up(s1, s2, tree.info(v)).0;
                        }
                        out.push((root, local));
                    }
                    (out, wqa)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    // Merge worker states into the master interner — by reference, so a
    // state the master already knows costs one probe and zero clones.
    // Transitions are *summed* over the workers: each worker's lazy
    // tables are computed independently, so the run's total work is the
    // sum of all of them (a `max` here made
    // `EvalStats::phase1_transitions` undercount parallel runs). The
    // worker automata go back to the pool once remapped — their memoized
    // tables make the next run's workers start warm. A warm worker may
    // have interned states this run never touched; remapping covers the
    // whole table, which only costs probes against the master.
    for (subtrees, wqa) in results {
        worker_transitions += wqa.bu_transitions;
        worker_intern.absorb(&wqa.intern_stats());
        let remap: Vec<ProgramId> = (0..wqa.programs.len() as u32)
            .map(|i| qa.programs.intern_ref(wqa.programs.get(ProgramId(i))))
            .collect();
        for (root, local) in subtrees {
            let lo = root.0;
            for (off, lid) in local.into_iter().enumerate() {
                rho_a[lo as usize + off] = remap[lid as usize];
            }
        }
        pool.put(wqa);
    }

    // Sequential spine: everything not inside a frontier subtree.
    let mut covered = vec![false; n];
    for &r in &roots {
        for ix in r.0..idx.end(r.0) {
            covered[ix as usize] = true;
        }
    }
    for ix in (0..n as u32).rev() {
        if covered[ix as usize] {
            continue;
        }
        let v = NodeId(ix);
        let s1 = tree.first_child(v).map(|c| rho_a[c.ix()]);
        let s2 = tree.second_child(v).map(|c| rho_a[c.ix()]);
        rho_a[v.ix()] = qa.bottom_up(s1, s2, tree.info(v));
    }
    let phase1_time = t1.elapsed();

    // --- Phase 2: spine sequentially, frontier subtrees in parallel ----
    let t2 = Instant::now();
    let mut rho_b: Vec<PredSetId> = vec![PredSetId(u32::MAX); n];
    rho_b[0] = qa.start_state(rho_a[0]);
    // Sequential sweep over spine nodes; also assigns the frontier roots
    // (their parents are on the spine). Interiors are skipped.
    let is_root_of = |ix: u32| roots.binary_search(&NodeId(ix)).is_ok();
    for ix in 0..n as u32 {
        if covered[ix as usize] && !is_root_of(ix) {
            continue;
        }
        let v = NodeId(ix);
        if is_root_of(ix) {
            continue; // assigned by its parent below; interior is worker's
        }
        let q = rho_b[v.ix()];
        debug_assert_ne!(q.0, u32::MAX, "spine parent before child");
        if let Some(c) = tree.first_child(v) {
            rho_b[c.ix()] = qa.top_down(q, rho_a[c.ix()], 1);
        }
        if let Some(c) = tree.second_child(v) {
            rho_b[c.ix()] = qa.top_down(q, rho_a[c.ix()], 2);
        }
    }
    // A frontier root may itself be the tree root (tiny trees): handled
    // since rho_b[0] is set. Workers descend each frontier subtree with
    // their own caches, re-interning against the master tables afterward.
    type Phase2SubtreeOut = (NodeId, Vec<u32>);
    type Phase2Out = (Vec<Phase2SubtreeOut>, QueryAutomata);
    let master_programs = &qa.programs;
    let master_predsets = &qa.predsets;
    let rho_b_snapshot: Vec<PredSetId> = rho_b.clone();
    let results2: Vec<Phase2Out> = crossbeam::thread::scope(|scope| {
        let chunks: Vec<Vec<NodeId>> = {
            let mut cs: Vec<Vec<NodeId>> = vec![Vec::new(); threads];
            for (i, &r) in roots.iter().enumerate() {
                cs[i % threads].push(r);
            }
            cs
        };
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|mine| {
                let idx = &idx;
                let rho_a = &rho_a;
                let rho_b_snapshot = &rho_b_snapshot;
                scope.spawn(move |_| {
                    let mut out: Vec<Phase2SubtreeOut> = Vec::new();
                    let mut wqa = pool.take(prog);
                    // Master phase-1 states re-interned into the worker.
                    let mut a_map: Vec<u32> = vec![u32::MAX; master_programs.len()];
                    for root in mine {
                        let lo = root.0;
                        let hi = idx.end(root.0);
                        let mut local: Vec<u32> = vec![u32::MAX; (hi - lo) as usize];
                        // The root's predicate set comes from the master.
                        let root_set = master_predsets.get(rho_b_snapshot[root.ix()]);
                        local[0] = wqa.predsets.intern_sorted(root_set.atoms()).0;
                        for ix in lo..hi {
                            let v = NodeId(ix);
                            let q = PredSetId(local[(ix - lo) as usize]);
                            for (k, c) in [(1u8, tree.first_child(v)), (2, tree.second_child(v))] {
                                let Some(c) = c else { continue };
                                let m = rho_a[c.ix()].0 as usize;
                                if a_map[m] == u32::MAX {
                                    a_map[m] = wqa
                                        .programs
                                        .intern_ref(master_programs.get(ProgramId(m as u32)))
                                        .0;
                                }
                                local[(c.0 - lo) as usize] =
                                    wqa.top_down(q, ProgramId(a_map[m]), k).0;
                            }
                        }
                        out.push((root, local));
                    }
                    (out, wqa)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");
    // Like phase 1: sum the workers' transition counts, don't take a max,
    // and return the workers to the pool once their states are re-interned.
    let mut worker_td = 0u64;
    for (subtrees, wqa) in results2 {
        worker_td += wqa.td_transitions;
        worker_intern.absorb(&wqa.intern_stats());
        let remap: Vec<PredSetId> = (0..wqa.predsets.len() as u32)
            .map(|i| {
                qa.predsets
                    .intern_sorted(wqa.predsets.get(PredSetId(i)).atoms())
            })
            .collect();
        for (root, local) in subtrees {
            let lo = root.0;
            for (off, lid) in local.into_iter().enumerate() {
                rho_b[lo as usize + off] = remap[lid as usize];
            }
        }
        pool.put(wqa);
    }
    debug_assert!(rho_b.iter().all(|s| s.0 != u32::MAX));
    let phase2_time = t2.elapsed();

    let selected = match prog.query_preds() {
        [] => 0,
        qs => rho_b
            .iter()
            .filter(|&&ps| {
                let set = qa.predsets.get(ps);
                qs.iter().any(|&q| set.contains(Atom::local(q)))
            })
            .count() as u64,
    };
    let stats = EvalStats {
        idb_count: prog.pred_count(),
        rule_count: prog.rule_count(),
        phase1_time,
        phase1_transitions: (qa.bu_transitions - bu0) + worker_transitions,
        phase2_time,
        phase2_transitions: (qa.td_transitions - td0) + worker_td,
        selected,
        memory_bytes: qa.memory_bytes(),
        bu_states: qa.bu_state_count(),
        td_states: qa.td_state_count(),
        nodes: n as u64,
        backward_scans: 1,
        forward_scans: 1,
        sta_encoded_bytes: 0,
        sta_decoded_bytes: 0,
        db_format: 0,
        blocks_decoded: 0,
        batch_size: 0,
        queue_wait: Duration::ZERO,
        automata_builds: 0,
        automata_reused: 0,
        automata_build_time: Duration::ZERO,
        interning: {
            let mut i = qa.intern_stats();
            i.absorb(&worker_intern);
            i
        },
        dirty_nodes: 0,
        retained_sta_blocks: 0,
        refreshes: 0,
    };
    TreeEvalRun {
        rho_a,
        rho_b,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twophase::evaluate_tree;
    use arb_tmnf::{normalize, parse_program};
    use arb_tree::{infix::infix_tree, LabelId, LabelTable};

    #[test]
    fn parallel_matches_sequential() {
        let mut lt = LabelTable::new();
        let root = lt.intern("r").unwrap();
        let seq: Vec<LabelId> = (0..1023u32)
            .map(|i| LabelId(b"ACGT"[(i as usize * 7 + 3) % 4] as u16))
            .collect();
        let tree = infix_tree(root, &seq);
        let src = format!(
            "QUERY :- V.Label['A'].{}.Label['C'];",
            arb_tmnf::programs::INFIX_PREVIOUS
        );
        let ast = parse_program(&src, &mut lt).unwrap();
        let mut prog = normalize(&ast);
        prog.add_query_pred(prog.pred_id("QUERY").unwrap());

        let seq_res = evaluate_tree(&prog, &tree);
        let par_res = evaluate_tree_parallel(&prog, &tree, 4);
        assert_eq!(seq_res.stats.selected, par_res.stats.selected);
        for v in tree.nodes() {
            assert_eq!(seq_res.preds_at(v), par_res.preds_at(v), "node {}", v.0);
        }

        // Stats compatibility: workers recompute transitions the
        // sequential run memoizes once, so the parallel totals can only
        // be at least the sequential ones — but they must stay within
        // the (workers + master) × sequential envelope, and the
        // structural columns must agree exactly. A `max`-merge of worker
        // counts violated the lower bound.
        for (seq_t, par_t) in [
            (
                seq_res.stats.phase1_transitions,
                par_res.stats.phase1_transitions,
            ),
            (
                seq_res.stats.phase2_transitions,
                par_res.stats.phase2_transitions,
            ),
        ] {
            assert!(
                par_t >= seq_t,
                "parallel transitions undercounted: {par_t} < sequential {seq_t}"
            );
            assert!(
                par_t <= seq_t * 6,
                "parallel transitions beyond the worker envelope: {par_t} vs {seq_t}"
            );
        }
        assert_eq!(seq_res.stats.nodes, par_res.stats.nodes);
        assert_eq!(seq_res.stats.idb_count, par_res.stats.idb_count);
        assert_eq!(seq_res.stats.rule_count, par_res.stats.rule_count);
    }

    #[test]
    fn parallel_on_tiny_tree_falls_back() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut b = arb_tree::TreeBuilder::new();
        b.open(a);
        b.leaf(a);
        b.close();
        let tree = b.finish().unwrap();
        let ast = parse_program("Q :- Root;", &mut lt).unwrap();
        let prog = normalize(&ast);
        let res = evaluate_tree_parallel(&prog, &tree, 8);
        assert_eq!(res.rho_b.len(), 2);
    }
}
