//! Evaluation statistics — the columns of the paper's Figure 6, plus
//! interning-pressure reporting for the automata hash tables.

use crate::lazy::InternStats;
use std::time::Duration;

/// Statistics collected by a two-phase evaluation run.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Number of IDB predicates of the program (column 2, `|IDB|`).
    pub idb_count: usize,
    /// Number of TMNF rules (column 3, `|P|`).
    pub rule_count: usize,
    /// Wall time of the bottom-up phase (column 4).
    pub phase1_time: Duration,
    /// Lazily computed transitions of automaton `A` (column 5).
    pub phase1_transitions: u64,
    /// Wall time of the top-down phase (column 6).
    pub phase2_time: Duration,
    /// Lazily computed transitions of automaton `B` (column 7).
    pub phase2_transitions: u64,
    /// Nodes selected by the query predicate (column 9).
    pub selected: u64,
    /// Approximate main memory for automata state (column 10), bytes.
    pub memory_bytes: usize,
    /// Number of distinct bottom-up states (residual programs).
    pub bu_states: usize,
    /// Number of distinct top-down states (predicate sets).
    pub td_states: usize,
    /// Number of tree nodes processed.
    pub nodes: u64,
    /// Backward (phase-1) linear scans / reverse-preorder sweeps
    /// performed. Proposition 5.1 promises exactly one per evaluation —
    /// including batched multi-query evaluations, which share it across
    /// all queries of the batch.
    pub backward_scans: u64,
    /// Forward (phase-2) linear scans / preorder sweeps performed.
    /// Exactly one per evaluation (zero for boolean document filtering).
    pub forward_scans: u64,
    /// Bytes of temporary `.sta` state-stream data the run put on disk.
    /// The paper's flat layout (footnote 12) costs exactly 4 bytes per
    /// node; the default block-compressed layout typically lands well
    /// under that (delta/varint + run-length + skip-default encoding).
    /// 0 for in-memory evaluation and boolean document filtering.
    /// Reported here because the uniquely named scratch file itself is
    /// deleted when the run finishes.
    pub sta_encoded_bytes: u64,
    /// Bytes of state data phase 2 consumed from the `.sta` stream — 4
    /// per state served, i.e. the flat-equivalent volume the encoded
    /// bytes above stand in for. Sharded non-streaming runs read fewer
    /// states than sequential runs (spine states stay in memory), so
    /// this also exposes how much of the stream each strategy touched.
    pub sta_decoded_bytes: u64,
    /// On-disk format version of the database the run scanned (1 or 2),
    /// or 0 for in-memory evaluation.
    pub db_format: u8,
    /// v2 blocks decoded (and checksum-verified) by this run's scans and
    /// point reads — 0 on v1 databases and in memory. Together with the
    /// scan counters this makes the blocked read path observable: a full
    /// pass over an n-node v2 database decodes `ceil(n / 32768)` blocks
    /// per scan direction.
    pub blocks_decoded: u64,
    /// Queries that shared this run's scan pair: the batch width of the
    /// session surface (1 for a single-query session), the admission
    /// window's width when the run was dispatched by the resident query
    /// service. 0 when the run bypassed the batch surface (raw kernels).
    pub batch_size: u64,
    /// How long this query waited in an admission queue before the
    /// shared pass started. Zero outside the resident query service,
    /// which stamps it per request before reporting stats on the wire.
    pub queue_wait: Duration,
    /// `QueryAutomata` this run constructed from scratch (master plus
    /// every parallel worker). A fresh one-shot evaluation reports its
    /// true construction count; a warm `Session` (or a server window
    /// whose shape is cached) reports 0 here and the reuse count below —
    /// the observable proof that the build-once/eval-many lifecycle
    /// engaged.
    pub automata_builds: u64,
    /// Warm `QueryAutomata` this run took from its session/window pool
    /// instead of building (their interned δ tables arrive pre-memoized
    /// from earlier evaluations).
    pub automata_reused: u64,
    /// Wall time this run spent constructing automata from scratch
    /// (zero once a session is warm).
    pub automata_build_time: Duration,
    /// Interning pressure of the automata hash tables: arena payload
    /// bytes, index bytes, probe lengths, distinct schema symbols and
    /// memoized δ entries. Parallel runs report master + workers
    /// combined (see [`InternStats::absorb`]).
    pub interning: InternStats,
    /// Nodes whose phase-1 and/or phase-2 state an incremental refresh
    /// actually recomputed: the edited window plus the changed root
    /// spine and the phase-2 fringe below it. 0 for from-scratch
    /// evaluations; for refreshes this is the observable "touched <
    /// update-size + depth" guarantee of the updatable-database path.
    pub dirty_nodes: u64,
    /// Full `.sta` blocks an incremental refresh kept verbatim
    /// (byte-copied, not re-encoded) from the previous epoch's state
    /// stream. 0 for from-scratch runs and in-memory refreshes.
    pub retained_sta_blocks: u64,
    /// Incremental refreshes this report covers: 0 for a from-scratch
    /// evaluation, 1 for a single `Session::refresh`, and the running
    /// total when a standing query reports cumulative stats.
    pub refreshes: u64,
}

impl EvalStats {
    /// Total wall time (column 8).
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time
    }

    /// One row of a Figure-6-style table.
    pub fn table_row(&self) -> String {
        format!(
            "{:>6} {:>6} {:>9.3} {:>10} {:>9.3} {:>10} {:>9.3} {:>10} {:>10.1}",
            self.idb_count,
            self.rule_count,
            self.phase1_time.as_secs_f64(),
            self.phase1_transitions,
            self.phase2_time.as_secs_f64(),
            self.phase2_transitions,
            self.total_time().as_secs_f64(),
            self.selected,
            self.memory_bytes as f64 / 1024.0,
        )
    }

    /// Header matching [`EvalStats::table_row`].
    pub fn table_header() -> &'static str {
        "  |IDB|    |P|  t1(s)    trans1     t2(s)    trans2   total(s)  selected  mem(KiB)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_formatting() {
        let s = EvalStats {
            idb_count: 14,
            rule_count: 21,
            phase1_time: Duration::from_millis(500),
            phase2_time: Duration::from_millis(250),
            phase1_transitions: 15,
            phase2_transitions: 40,
            selected: 8136,
            memory_bytes: 1653 * 1024,
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(750));
        let row = s.table_row();
        assert!(row.contains("14"));
        assert!(row.contains("8136"));
        assert!(EvalStats::table_header().contains("trans1"));
    }
}
