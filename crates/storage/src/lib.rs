//! # arb-storage
//!
//! The Arb storage model for binary trees on disk (paper Section 5).
//!
//! Each node is a fixed-size 2-byte record: the two highest bits say
//! whether the node has a first and/or second child, the remaining 14
//! bits hold the label index. Records are stored in **preorder**. Label
//! names live in a separate `.lab` file; database creation streams SAX
//! events to a temporary `.evt` file (forward pass) and then writes the
//! `.arb` file **backwards** while reading the events backwards — the
//! trick that bounds memory by the *XML* (unranked) depth rather than the
//! (potentially huge) sibling-chain depth of the binary tree.
//!
//! Proposition 5.1: the binary tree can be traversed
//! * **top-down** by one forward linear scan, and
//! * **bottom-up** by one backward linear scan,
//!
//! each with a stack of size `O(depth(XML tree))`. [`traversal`]
//! implements both as generic drivers; [`crate::db::ArbDatabase`] ties
//! everything together.

pub mod create;
pub mod db;
pub mod evt;
pub mod format;
pub mod rev;
pub mod scan;
pub mod stafile;
pub mod stats;
pub mod traversal;

pub use create::{create_from_tree, create_from_xml, CreationStats};
pub use db::ArbDatabase;
pub use format::NodeRecord;
pub use scan::{BackwardScan, ForwardScan};
pub use stafile::ScratchPath;
pub use stats::{profile, Profile};
pub use traversal::{bottom_up_scan, subtree_extents, top_down_scan, DownContext};
