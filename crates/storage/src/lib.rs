//! # arb-storage
//!
//! The Arb storage model for binary trees on disk (paper Section 5).
//!
//! Each node is a 2-byte logical record: the two highest bits say
//! whether the node has a first and/or second child, the remaining 14
//! bits hold the label index. Records are stored in **preorder**. Label
//! names live in a separate `.lab` file; database creation streams SAX
//! events to a temporary `.evt` file (forward pass) and then writes the
//! record file **backwards** while reading the events backwards — the
//! trick that bounds memory by the *XML* (unranked) depth rather than the
//! (potentially huge) sibling-chain depth of the binary tree.
//!
//! Proposition 5.1: the binary tree can be traversed
//! * **top-down** by one forward linear scan, and
//! * **bottom-up** by one backward linear scan,
//!
//! each with a stack of size `O(depth(XML tree))`. [`traversal`]
//! implements both as generic drivers; [`crate::db::ArbDatabase`] ties
//! everything together.
//!
//! ## On-disk format versions
//!
//! Two `.arb` layouts exist behind the same scan API; `ArbDatabase::open`
//! sniffs which one a file uses, and creation takes a
//! [`FormatVersion`] (default [`FormatVersion::V2`]):
//!
//! * **v1** — the paper's layout verbatim: a bare array of `n` 2-byte
//!   records, nothing else. No magic, no version, no checksums: a
//!   crashed creation or truncated copy is indistinguishable from a
//!   valid database and used to open (and answer queries) silently.
//!   See [`mod@format`].
//! * **v2** — a 64-byte checksummed header (magic, version, node and
//!   tag counts, section offsets), the records delta/varint-encoded in
//!   blocks of 32 Ki records — each block framed with a record count,
//!   body length and CRC32 — followed by a windowed **extent section**
//!   (per-node subtree ends + child flags, materialized at creation
//!   time, CRC32 per 16 Ki-node window) and a checksummed **block
//!   index** that lets `[lo, hi)` range scans seek straight to the
//!   right block. Truncation, bit flips, checksum damage and crashed
//!   creations are all rejected at open or scan time with
//!   `InvalidData`. See [`v2`] for the exact byte layout.
//!
//! ## The `.sta` state stream
//!
//! Two-phase evaluation writes one state id per node to a temporary
//! `.sta` stream during the backward phase-1 scan and reads it back in
//! lockstep with the forward phase-2 scan. Like `.arb` records it has
//! two layouts behind one API ([`StaFormat`], default blocked,
//! `ARB_STA_FORMAT=flat` for the paper's bare 4-bytes-per-node array):
//! the blocked layout groups states into fixed-record-count blocks, each
//! framed `{n_records, body_len, crc32}` like a v2 record block, with a
//! body of LEB128 varint tokens — delta-coded literals, run-length runs,
//! and a **skip-default** run token eliding nodes whose state equals the
//! block's most frequent state. Sharded runs compose out of per-worker
//! segment side files plus a spine patch file; see [`stafile`] for the
//! exact byte layout and the sharding story.
//!
//! ## In-place updates
//!
//! v2 databases are updatable: [`ArbUpdater`] (and
//! [`ArbDatabase::apply_update`] on an open handle) appends, splices and
//! deletes subtrees by rewriting only the record blocks from the edit's
//! dirty point on, crash-safe via the same placeholder-header discipline
//! as creation. Each update bumps a per-kind counter in the header; the
//! sum is the file's **epoch**, which open handles use to invalidate
//! their block LRU and extent caches. v2 files from before the update
//! API carry zero counters and open unchanged at epoch 0. See
//! [`update`].

pub mod create;
pub mod db;
pub mod evt;
pub mod format;
pub mod rev;
pub mod scan;
pub mod stafile;
pub mod stats;
pub mod traversal;
pub mod update;
pub mod v2;

pub use create::{
    create_from_tree, create_from_tree_with, create_from_xml, create_from_xml_with, CreationStats,
    FormatVersion,
};
pub use db::{ArbDatabase, ExtentVecs};
pub use format::NodeRecord;
pub use scan::{BackwardScan, ForwardScan};
pub use stafile::{rewrite_blocked, sweep_stale_scratch, ScratchPath, StaFormat, StaRewrite};
pub use stats::{profile, Profile};
pub use traversal::{bottom_up_scan, subtree_extents, top_down_scan, DownContext};
pub use update::{
    apply_edit, plan_append, plan_delete, plan_splice, record_extents, records_to_tree,
    validate_fragment, ArbUpdater, EditPlan, UpdateOp, UpdateReport,
};
