//! Linear scans over `.arb` record streams.

use crate::format::{NodeRecord, RECORD_BYTES};
use crate::rev::RevReader;
use std::io::{self, BufReader, Read, Seek, SeekFrom};

/// Forward (left-to-right) record scan — the top-down traversal's input
/// (paper Prop. 5.1). Yields `(preorder index, record)`.
pub struct ForwardScan<R: Read> {
    inner: BufReader<R>,
    next_ix: u32,
    /// One past the last record of the window.
    hi: u32,
}

impl<R: Read> ForwardScan<R> {
    /// A scan over `n` records.
    pub fn new(inner: R, n: u32) -> Self {
        ForwardScan {
            inner: BufReader::with_capacity(64 * 1024, inner),
            next_ix: 0,
            hi: n,
        }
    }

    /// A scan over the record window `[lo, hi)`, seeking to `lo` first —
    /// yielded indexes stay absolute preorder indexes. Sharded phase-2
    /// workers descend disjoint frontier subtrees with these.
    pub fn range(mut inner: R, lo: u32, hi: u32) -> io::Result<Self>
    where
        R: Seek,
    {
        debug_assert!(lo <= hi);
        inner.seek(SeekFrom::Start(lo as u64 * RECORD_BYTES as u64))?;
        Ok(ForwardScan {
            inner: BufReader::with_capacity(64 * 1024, inner),
            next_ix: lo,
            hi,
        })
    }

    /// Reads the next record, or `None` after the last.
    pub fn next_record(&mut self) -> io::Result<Option<(u32, NodeRecord)>> {
        if self.next_ix >= self.hi {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_BYTES];
        self.inner.read_exact(&mut buf)?;
        let ix = self.next_ix;
        self.next_ix += 1;
        Ok(Some((ix, NodeRecord::from_bytes(buf))))
    }
}

/// Backward (right-to-left) record scan — the bottom-up traversal's input
/// (paper Prop. 5.1). Yields `(preorder index, record)` from `hi−1` down
/// to `lo` (the whole file with [`BackwardScan::new`]).
pub struct BackwardScan<R: Read + Seek> {
    inner: RevReader<R>,
    next_ix: u32,
    /// First record of the window (where the scan ends).
    lo: u32,
}

impl<R: Read + Seek> BackwardScan<R> {
    /// A scan over `n` records.
    pub fn new(inner: R, n: u32) -> io::Result<Self> {
        Self::range(inner, 0, n)
    }

    /// A scan over the record window `[lo, hi)`, read backwards from
    /// `hi−1` — the input of per-worker phase-1 subtree runs in sharded
    /// evaluation.
    pub fn range(inner: R, lo: u32, hi: u32) -> io::Result<Self> {
        Ok(BackwardScan {
            inner: RevReader::for_range(
                inner,
                lo as u64 * RECORD_BYTES as u64,
                hi as u64 * RECORD_BYTES as u64,
                RECORD_BYTES,
            )?,
            next_ix: hi,
            lo,
        })
    }

    /// The first record index of the window (0 for a whole-file scan).
    pub fn start_ix(&self) -> u32 {
        self.lo
    }

    /// Reads the previous record, or `None` before the first.
    pub fn next_record(&mut self) -> io::Result<Option<(u32, NodeRecord)>> {
        let mut buf = [0u8; RECORD_BYTES];
        match self.inner.read_record(&mut buf)? {
            None => Ok(None),
            Some(()) => {
                self.next_ix -= 1;
                Ok(Some((self.next_ix, NodeRecord::from_bytes(buf))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::LabelId;
    use std::io::Cursor;

    fn records() -> Vec<NodeRecord> {
        (0..5u16)
            .map(|i| NodeRecord {
                label: LabelId(300 + i),
                has_first: i % 2 == 0,
                has_second: i % 3 == 0,
            })
            .collect()
    }

    fn file_of(recs: &[NodeRecord]) -> Vec<u8> {
        recs.iter().flat_map(|r| r.to_bytes()).collect()
    }

    #[test]
    fn forward_yields_in_order() {
        let recs = records();
        let mut scan = ForwardScan::new(Cursor::new(file_of(&recs)), recs.len() as u32);
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(ix as usize, seen.len());
            seen.push(r);
        }
        assert_eq!(seen, recs);
    }

    #[test]
    fn range_scans_yield_the_window_with_absolute_indexes() {
        let recs = records();
        let bytes = file_of(&recs);

        let mut scan = ForwardScan::range(Cursor::new(bytes.clone()), 1, 4).unwrap();
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen, vec![1, 2, 3]);

        let mut scan = BackwardScan::range(Cursor::new(bytes), 1, 4).unwrap();
        assert_eq!(scan.start_ix(), 1);
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn backward_yields_in_reverse() {
        let recs = records();
        let mut scan = BackwardScan::new(Cursor::new(file_of(&recs)), recs.len() as u32).unwrap();
        let mut expected_ix = recs.len() as u32;
        while let Some((ix, r)) = scan.next_record().unwrap() {
            expected_ix -= 1;
            assert_eq!(ix, expected_ix);
            assert_eq!(r, recs[ix as usize]);
        }
        assert_eq!(expected_ix, 0);
    }
}
