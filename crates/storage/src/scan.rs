//! Linear scans over `.arb` record streams.
//!
//! Both scan directions come in two backings behind one type each: a
//! **raw** variant streaming the v1 fixed-width record array, and a
//! **blocked** variant decoding v2 blocks (see [`crate::v2`]) into a
//! reusable record buffer — one checksum-verified 64 KiB-class decode
//! per block instead of a 2-byte read per record. Callers (the
//! traversal drivers, the query kernels) see the same
//! `next_record() -> (preorder index, record)` stream either way, so
//! Proposition 5.1's two-linear-scans shape is untouched by the format.

use crate::format::{NodeRecord, RECORD_BYTES};
use crate::rev::RevReader;
use crate::v2::{read_block, BlockMap};
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-safe `Read + Seek`, so the blocked forward variant can hold a
/// seekable reader without forcing `Seek` onto `ForwardScan`'s public
/// `R: Read` bound (which in-memory `Cursor` tests and the traversal
/// drivers rely on).
trait ReadSeek: Read + Seek {}
impl<T: Read + Seek> ReadSeek for T {}

/// Shared state of a blocked (v2) scan in either direction.
struct Blocked {
    inner: Box<dyn ReadSeek>,
    map: Arc<BlockMap>,
    /// Lifetime block-decode counter of the owning database handle.
    counter: Option<Arc<AtomicU64>>,
    /// Reusable decoded-record buffer (one block).
    buf: Vec<NodeRecord>,
    /// Reusable compressed-body scratch buffer.
    scratch: Vec<u8>,
    /// Block index currently decoded in `buf` (`u32::MAX` = none).
    loaded: u32,
}

impl Blocked {
    fn new(inner: Box<dyn ReadSeek>, map: Arc<BlockMap>, counter: Option<Arc<AtomicU64>>) -> Self {
        Blocked {
            inner,
            map,
            counter,
            buf: Vec::new(),
            scratch: Vec::new(),
            loaded: u32::MAX,
        }
    }

    /// Returns the record at absolute preorder index `ix`, decoding its
    /// block first if it is not the one already buffered.
    fn record(&mut self, ix: u32) -> io::Result<NodeRecord> {
        let b = self.map.block_of(ix);
        if self.loaded != b {
            read_block(
                &mut self.inner,
                self.map.offsets[b as usize],
                self.map.records_in(b),
                &mut self.scratch,
                &mut self.buf,
            )?;
            self.loaded = b;
            if let Some(c) = &self.counter {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(self.buf[(ix - b * self.map.block_records) as usize])
    }
}

enum FwdInner<R: Read> {
    Raw(BufReader<R>),
    Blocked(Blocked),
}

/// Forward (left-to-right) record scan — the top-down traversal's input
/// (paper Prop. 5.1). Yields `(preorder index, record)`.
pub struct ForwardScan<R: Read> {
    inner: FwdInner<R>,
    next_ix: u32,
    /// One past the last record of the window.
    hi: u32,
}

impl<R: Read> ForwardScan<R> {
    /// A scan over `n` raw (v1) records.
    pub fn new(inner: R, n: u32) -> Self {
        ForwardScan {
            inner: FwdInner::Raw(BufReader::with_capacity(64 * 1024, inner)),
            next_ix: 0,
            hi: n,
        }
    }

    /// A raw (v1) scan over the record window `[lo, hi)`, seeking to
    /// `lo` first — yielded indexes stay absolute preorder indexes.
    /// Sharded phase-2 workers descend disjoint frontier subtrees with
    /// these.
    pub fn range(mut inner: R, lo: u32, hi: u32) -> io::Result<Self>
    where
        R: Seek,
    {
        debug_assert!(lo <= hi);
        inner.seek(SeekFrom::Start(lo as u64 * RECORD_BYTES as u64))?;
        Ok(ForwardScan {
            inner: FwdInner::Raw(BufReader::with_capacity(64 * 1024, inner)),
            next_ix: lo,
            hi,
        })
    }

    /// A blocked (v2) scan over `[lo, hi)`: the per-block index lets the
    /// scan seek straight to the block holding `lo`.
    pub(crate) fn blocked(
        inner: R,
        map: Arc<BlockMap>,
        counter: Option<Arc<AtomicU64>>,
        lo: u32,
        hi: u32,
    ) -> Self
    where
        R: Seek + 'static,
    {
        debug_assert!(lo <= hi);
        ForwardScan {
            inner: FwdInner::Blocked(Blocked::new(Box::new(inner), map, counter)),
            next_ix: lo,
            hi,
        }
    }

    /// Reads the next record, or `None` after the last.
    pub fn next_record(&mut self) -> io::Result<Option<(u32, NodeRecord)>> {
        if self.next_ix >= self.hi {
            return Ok(None);
        }
        let ix = self.next_ix;
        let rec = match &mut self.inner {
            FwdInner::Raw(r) => {
                let mut buf = [0u8; RECORD_BYTES];
                r.read_exact(&mut buf)?;
                NodeRecord::from_bytes(buf)
            }
            FwdInner::Blocked(b) => b.record(ix)?,
        };
        self.next_ix += 1;
        Ok(Some((ix, rec)))
    }
}

enum BwdInner<R: Read + Seek> {
    Raw(RevReader<R>),
    Blocked(Blocked),
}

/// Backward (right-to-left) record scan — the bottom-up traversal's input
/// (paper Prop. 5.1). Yields `(preorder index, record)` from `hi−1` down
/// to `lo` (the whole file with [`BackwardScan::new`]).
pub struct BackwardScan<R: Read + Seek> {
    inner: BwdInner<R>,
    next_ix: u32,
    /// First record of the window (where the scan ends).
    lo: u32,
}

impl<R: Read + Seek> BackwardScan<R> {
    /// A scan over `n` raw (v1) records.
    pub fn new(inner: R, n: u32) -> io::Result<Self> {
        Self::range(inner, 0, n)
    }

    /// A raw (v1) scan over the record window `[lo, hi)`, read backwards
    /// from `hi−1` — the input of per-worker phase-1 subtree runs in
    /// sharded evaluation.
    pub fn range(inner: R, lo: u32, hi: u32) -> io::Result<Self> {
        Ok(BackwardScan {
            inner: BwdInner::Raw(RevReader::for_range(
                inner,
                lo as u64 * RECORD_BYTES as u64,
                hi as u64 * RECORD_BYTES as u64,
                RECORD_BYTES,
            )?),
            next_ix: hi,
            lo,
        })
    }

    /// A blocked (v2) scan over `[lo, hi)`, read backwards block by
    /// block.
    pub(crate) fn blocked(
        inner: R,
        map: Arc<BlockMap>,
        counter: Option<Arc<AtomicU64>>,
        lo: u32,
        hi: u32,
    ) -> Self
    where
        R: 'static,
    {
        debug_assert!(lo <= hi);
        BackwardScan {
            inner: BwdInner::Blocked(Blocked::new(Box::new(inner), map, counter)),
            next_ix: hi,
            lo,
        }
    }

    /// The first record index of the window (0 for a whole-file scan).
    pub fn start_ix(&self) -> u32 {
        self.lo
    }

    /// Reads the previous record, or `None` before the first.
    pub fn next_record(&mut self) -> io::Result<Option<(u32, NodeRecord)>> {
        match &mut self.inner {
            BwdInner::Raw(rev) => {
                let mut buf = [0u8; RECORD_BYTES];
                match rev.read_record(&mut buf)? {
                    None => Ok(None),
                    Some(()) => {
                        self.next_ix -= 1;
                        Ok(Some((self.next_ix, NodeRecord::from_bytes(buf))))
                    }
                }
            }
            BwdInner::Blocked(b) => {
                if self.next_ix <= self.lo {
                    return Ok(None);
                }
                let ix = self.next_ix - 1;
                let rec = b.record(ix)?;
                self.next_ix = ix;
                Ok(Some((ix, rec)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_tree::LabelId;
    use std::io::Cursor;

    fn records() -> Vec<NodeRecord> {
        (0..5u16)
            .map(|i| NodeRecord {
                label: LabelId(300 + i),
                has_first: i % 2 == 0,
                has_second: i % 3 == 0,
            })
            .collect()
    }

    fn file_of(recs: &[NodeRecord]) -> Vec<u8> {
        recs.iter().flat_map(|r| r.to_bytes()).collect()
    }

    /// A v2 file (as bytes) plus its block map, for blocked-scan tests.
    fn v2_file_of(recs: &[NodeRecord]) -> (Vec<u8>, Arc<BlockMap>) {
        let dir = std::env::temp_dir().join(format!("arb-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("s{}.arbv2", recs.len()));
        let mut w =
            crate::v2::V2Writer::new(std::fs::File::create(&path).unwrap(), recs.len() as u32, 0)
                .unwrap();
        for &r in recs {
            w.push(r).unwrap();
        }
        // Structurally meaningless extents are fine for scan tests.
        let ends: Vec<u32> = (0..recs.len() as u32).map(|v| v + 1).collect();
        let kinds = vec![0u8; recs.len()];
        let len = w.finish(&ends, &kinds).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut f = Cursor::new(bytes.clone());
        let meta = crate::v2::read_meta(&mut f, len).unwrap();
        (bytes, meta.map)
    }

    #[test]
    fn forward_yields_in_order() {
        let recs = records();
        let mut scan = ForwardScan::new(Cursor::new(file_of(&recs)), recs.len() as u32);
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(ix as usize, seen.len());
            seen.push(r);
        }
        assert_eq!(seen, recs);
    }

    #[test]
    fn range_scans_yield_the_window_with_absolute_indexes() {
        let recs = records();
        let bytes = file_of(&recs);

        let mut scan = ForwardScan::range(Cursor::new(bytes.clone()), 1, 4).unwrap();
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen, vec![1, 2, 3]);

        let mut scan = BackwardScan::range(Cursor::new(bytes), 1, 4).unwrap();
        assert_eq!(scan.start_ix(), 1);
        let mut seen = Vec::new();
        while let Some((ix, r)) = scan.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn backward_yields_in_reverse() {
        let recs = records();
        let mut scan = BackwardScan::new(Cursor::new(file_of(&recs)), recs.len() as u32).unwrap();
        let mut expected_ix = recs.len() as u32;
        while let Some((ix, r)) = scan.next_record().unwrap() {
            expected_ix -= 1;
            assert_eq!(ix, expected_ix);
            assert_eq!(r, recs[ix as usize]);
        }
        assert_eq!(expected_ix, 0);
    }

    #[test]
    fn blocked_scans_match_raw_scans() {
        // Enough records to span multiple blocks would be slow here;
        // block-boundary behavior is covered by the db-level tests. This
        // exercises both directions and range windows on one block.
        let recs: Vec<NodeRecord> = (0..100u16)
            .map(|i| NodeRecord {
                label: LabelId(256 + (i * 13) % 500),
                has_first: i % 2 == 1,
                has_second: i % 4 == 0,
            })
            .collect();
        let (bytes, map) = v2_file_of(&recs);
        let counter = Arc::new(AtomicU64::new(0));

        let mut fwd = ForwardScan::blocked(
            Cursor::new(bytes.clone()),
            map.clone(),
            Some(counter.clone()),
            0,
            recs.len() as u32,
        );
        let mut seen = Vec::new();
        while let Some((ix, r)) = fwd.next_record().unwrap() {
            assert_eq!(ix as usize, seen.len());
            seen.push(r);
        }
        assert_eq!(seen, recs);
        assert_eq!(counter.load(Ordering::Relaxed), 1, "one block, one decode");

        let mut bwd = BackwardScan::blocked(
            Cursor::new(bytes.clone()),
            map.clone(),
            None,
            0,
            recs.len() as u32,
        );
        let mut seen = Vec::new();
        while let Some((ix, r)) = bwd.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen.len(), recs.len());
        assert_eq!(seen[0] as usize, recs.len() - 1);
        assert_eq!(*seen.last().unwrap(), 0);

        // Range windows with absolute indexes, both directions.
        let mut fwd = ForwardScan::blocked(Cursor::new(bytes.clone()), map.clone(), None, 10, 20);
        let mut ixs = Vec::new();
        while let Some((ix, r)) = fwd.next_record().unwrap() {
            assert_eq!(r, recs[ix as usize]);
            ixs.push(ix);
        }
        assert_eq!(ixs, (10..20).collect::<Vec<u32>>());
        let mut bwd = BackwardScan::blocked(Cursor::new(bytes), map, None, 10, 20);
        assert_eq!(bwd.start_ix(), 10);
        let mut ixs = Vec::new();
        while let Some((ix, _)) = bwd.next_record().unwrap() {
            ixs.push(ix);
        }
        assert_eq!(ixs, (10..20).rev().collect::<Vec<u32>>());
    }
}
