//! Two-pass `.arb` database creation (paper Section 5).
//!
//! "In a first pass, we make a SAX parsing run through the XML document
//! to count the total number n of nodes and write the SAX events to a
//! file. Then we create a new file – the .arb database – and start
//! writing it backwards, beginning at an offset of k·n bytes, while
//! reading our SAX events file backward. In this single backward pass, we
//! can transform the document into a binary tree [...] and only require a
//! stack of memory proportional to the depth of the XML tree."
//!
//! Creation writes [`FormatVersion::V2`] by default (see [`crate::v2`]
//! for the layout); `*_with` variants pin a version explicitly. The v2
//! XML path keeps the paper's two passes and adds a third over a raw
//! temporary record file: events → `.evt` → raw records → (extent
//! metadata scan, then block-compressed re-encode). The temporary file
//! is deleted afterwards; the `.evt` file is kept as in v1 (its size is
//! a Figure 5 column). On **any** error, every partial output
//! (`.arb`/`.evt`/`.lab`/`.tmp`) is removed — a failed creation leaves
//! nothing behind that could later open as a truncated database.

use crate::evt::{Event, EVENT_BYTES};
use crate::format::{NodeRecord, RECORD_BYTES};
use crate::rev::{RevReader, RevWriter};
use crate::scan::{BackwardScan, ForwardScan};
use crate::v2::V2Writer;
use arb_tree::{BinaryTree, LabelId, LabelTable};
use arb_xml::{XmlConfig, XmlEvent, XmlParser};
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// On-disk `.arb` format version to write at creation time.
///
/// [`crate::db::ArbDatabase::open`] sniffs the version from the file
/// itself, so readers never need this; it only selects what creation
/// writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FormatVersion {
    /// The paper's bare record array: 2 bytes per node, no header, no
    /// checksums.
    V1,
    /// Versioned, block-compressed, checksummed records with an on-disk
    /// extent index (see [`crate::v2`]).
    #[default]
    V2,
}

impl std::fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatVersion::V1 => write!(f, "v1"),
            FormatVersion::V2 => write!(f, "v2"),
        }
    }
}

/// Statistics of a database creation run — the columns of paper Figure 5.
#[derive(Clone, Debug, Default)]
pub struct CreationStats {
    /// Element nodes inserted (column 1).
    pub elem_nodes: u64,
    /// Character nodes inserted (column 2).
    pub char_nodes: u64,
    /// Number of distinct tags, excluding character labels (column 3).
    pub tags: u64,
    /// Total creation time (column 4).
    pub time: Duration,
    /// `.arb` file size in bytes (column 5). For [`FormatVersion::V1`]
    /// this is exactly `((1)+(2)) * 2` as in the paper; for v2 it is the
    /// actual size of the block-compressed file (typically smaller,
    /// despite carrying the extent index).
    pub arb_bytes: u64,
    /// `.lab` file size in bytes (column 6).
    pub lab_bytes: u64,
    /// Temporary `.evt` file size in bytes (column 7) — twice the v1
    /// `.arb` size (two events of two bytes per node).
    pub evt_bytes: u64,
}

impl CreationStats {
    /// Total node count.
    pub fn nodes(&self) -> u64 {
        self.elem_nodes + self.char_nodes
    }

    /// One row of a Figure-5-style table.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>12} {:>12} {:>6} {:>9.2} {:>13} {:>9} {:>13}",
            name,
            self.elem_nodes,
            self.char_nodes,
            self.tags,
            self.time.as_secs_f64(),
            self.arb_bytes,
            self.lab_bytes,
            self.evt_bytes,
        )
    }

    /// Header matching [`CreationStats::table_row`].
    pub fn table_header() -> &'static str {
        "database       elem nodes   char nodes   tags   time(s)     .arb bytes      .lab    .evt bytes"
    }
}

/// Derived sibling paths for a database base path (`x.arb` →
/// `x.lab`, `x.evt`, `x.sta`).
pub fn sibling(path: &Path, ext: &str) -> PathBuf {
    path.with_extension(ext)
}

/// Pass 1: stream SAX events to the `.evt` file; returns node count.
fn write_events<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    labels: &mut LabelTable,
    evt_path: &Path,
) -> Result<(u64, u64), CreateError> {
    let mut parser = XmlParser::with_config(reader, config.clone());
    let mut out = BufWriter::with_capacity(64 * 1024, File::create(evt_path)?);
    let mut elem_nodes = 0u64;
    let mut char_nodes = 0u64;
    let mut open_labels: Vec<LabelId> = Vec::new();
    loop {
        match parser.next_event().map_err(CreateError::Xml)? {
            XmlEvent::StartTag { name, attrs } => {
                let l = labels
                    .intern(&name)
                    .map_err(|e| CreateError::other(e.to_string()))?;
                out.write_all(&Event::Begin(l).to_bytes())?;
                open_labels.push(l);
                elem_nodes += 1;
                if config.attributes_as_nodes {
                    for (k, v) in &attrs {
                        let al = labels
                            .intern(&format!("@{k}"))
                            .map_err(|e| CreateError::other(e.to_string()))?;
                        out.write_all(&Event::Begin(al).to_bytes())?;
                        elem_nodes += 1;
                        for &b in v.as_bytes() {
                            let cl = LabelId::from_char_byte(b);
                            out.write_all(&Event::Begin(cl).to_bytes())?;
                            out.write_all(&Event::End(cl).to_bytes())?;
                            char_nodes += 1;
                        }
                        out.write_all(&Event::End(al).to_bytes())?;
                    }
                }
            }
            XmlEvent::EndTag { .. } => {
                let l = open_labels.pop().expect("parser guarantees balance");
                out.write_all(&Event::End(l).to_bytes())?;
            }
            XmlEvent::Text(bytes) => {
                for &b in &bytes {
                    let cl = LabelId::from_char_byte(b);
                    out.write_all(&Event::Begin(cl).to_bytes())?;
                    out.write_all(&Event::End(cl).to_bytes())?;
                    char_nodes += 1;
                }
            }
            XmlEvent::Eof => break,
        }
    }
    out.flush()?;
    Ok((elem_nodes, char_nodes))
}

/// Pass 2: read the `.evt` file backwards and write the raw record file
/// backwards. The stack is bounded by the XML depth.
fn events_to_arb(evt_path: &Path, arb_path: &Path, n: u64) -> Result<(), CreateError> {
    let evt_file = File::open(evt_path)?;
    let total_evt = evt_file.metadata()?.len();
    let mut rev = RevReader::new(evt_file, total_evt, EVENT_BYTES)?;
    let arb_file = File::create(arb_path)?;
    arb_file.set_len(n * RECORD_BYTES as u64)?;
    let mut out = RevWriter::new(arb_file, n * RECORD_BYTES as u64);

    /// Per-open-node state while reading events backwards.
    struct Frame {
        label: LabelId,
        /// Seen a child End already (=> the node has a first child once
        /// its Begin arrives; before that, each child End tells the next
        /// child that it has a following sibling).
        has_child: bool,
        /// The node has a following sibling (known at its End event from
        /// the parent's `has_child` at that moment).
        has_next: bool,
    }

    let mut stack: Vec<Frame> = Vec::new();
    let mut buf = [0u8; EVENT_BYTES];
    while rev.read_record(&mut buf)?.is_some() {
        match Event::from_bytes(buf) {
            Event::End(label) => {
                let has_next = stack.last().is_some_and(|p| p.has_child);
                if let Some(p) = stack.last_mut() {
                    p.has_child = true;
                }
                stack.push(Frame {
                    label,
                    has_child: false,
                    has_next,
                });
            }
            Event::Begin(label) => {
                let frame = stack.pop().ok_or_else(|| {
                    CreateError::other("event stream underflow (unbalanced events)")
                })?;
                if frame.label != label {
                    return Err(CreateError::other(format!(
                        "event stream corrupt: begin label {} does not match end label {}",
                        label.0, frame.label.0
                    )));
                }
                let rec = NodeRecord {
                    label,
                    has_first: frame.has_child,
                    has_second: frame.has_next,
                };
                out.write_record(&rec.to_bytes())?;
            }
        }
    }
    if !stack.is_empty() {
        return Err(CreateError::other("event stream truncated"));
    }
    out.finish()?;
    Ok(())
}

/// Re-encodes a raw (v1-layout) record file as v2: one backward metadata
/// scan for the extent section, then one forward pass feeding the block
/// writer.
fn raw_to_v2(raw_path: &Path, arb_path: &Path, n: u32, tag_count: u32) -> Result<(), CreateError> {
    let mut back = BackwardScan::new(File::open(raw_path)?, n)?;
    let (ends, kinds) = crate::traversal::subtree_extents(&mut back, n)?;
    let mut fwd = ForwardScan::new(File::open(raw_path)?, n);
    let mut w = V2Writer::new(File::create(arb_path)?, n, tag_count)?;
    while let Some((_, rec)) = fwd.next_record()? {
        w.push(rec)?;
    }
    w.finish(&ends, &kinds)?;
    Ok(())
}

/// Errors raised during database creation.
#[derive(Debug)]
pub enum CreateError {
    /// I/O failure.
    Io(io::Error),
    /// XML parse failure.
    Xml(arb_xml::XmlError),
    /// Structural failure.
    Other(String),
}

impl CreateError {
    fn other(msg: impl Into<String>) -> Self {
        CreateError::Other(msg.into())
    }
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::Io(e) => write!(f, "I/O error: {e}"),
            CreateError::Xml(e) => write!(f, "{e}"),
            CreateError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CreateError {}

impl From<io::Error> for CreateError {
    fn from(e: io::Error) -> Self {
        CreateError::Io(e)
    }
}

/// Removes every output a creation run may have started writing. Failed
/// creations call this so a crash-adjacent partial `.arb` can never be
/// opened later as a silently truncated database (the orphan-file bug).
fn remove_partial_outputs(arb_path: &Path) {
    for ext in ["arb", "evt", "lab", "tmp"] {
        let _ = std::fs::remove_file(sibling(arb_path, ext));
    }
}

/// Creates a `.arb` database (plus `.lab`) from an XML stream in the
/// default format ([`FormatVersion::V2`]). See
/// [`create_from_xml_with`].
pub fn create_from_xml<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    arb_path: &Path,
) -> Result<(CreationStats, LabelTable), CreateError> {
    create_from_xml_with(reader, config, arb_path, FormatVersion::default())
}

/// Creates a `.arb` database (plus `.lab`) from an XML stream, exactly as
/// the paper prescribes: forward SAX pass to `.evt`, backward pass to the
/// record file (for v2, a raw temporary re-encoded into blocks — transient
/// creation memory is O(n) for the extent vectors, 5 bytes per node).
/// `arb_path` should end in `.arb`; the `.lab` and `.evt` files are
/// placed alongside. The `.evt` file is kept (the paper reports its size
/// in Figure 5); callers may delete it. On error, all partial outputs
/// are removed.
pub fn create_from_xml_with<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    arb_path: &Path,
    format: FormatVersion,
) -> Result<(CreationStats, LabelTable), CreateError> {
    let result = create_from_xml_inner(reader, config, arb_path, format);
    if result.is_err() {
        remove_partial_outputs(arb_path);
    }
    result
}

fn create_from_xml_inner<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    arb_path: &Path,
    format: FormatVersion,
) -> Result<(CreationStats, LabelTable), CreateError> {
    let start = Instant::now();
    let evt_path = sibling(arb_path, "evt");
    let lab_path = sibling(arb_path, "lab");
    let mut labels = LabelTable::new();
    let (elem_nodes, char_nodes) = write_events(reader, config, &mut labels, &evt_path)?;
    let n = elem_nodes + char_nodes;
    if n == 0 {
        return Err(CreateError::other("empty document"));
    }
    let n32 = u32::try_from(n).map_err(|_| CreateError::other("database exceeds 2^32 nodes"))?;
    match format {
        FormatVersion::V1 => events_to_arb(&evt_path, arb_path, n)?,
        FormatVersion::V2 => {
            let tmp_path = sibling(arb_path, "tmp");
            events_to_arb(&evt_path, &tmp_path, n)?;
            raw_to_v2(&tmp_path, arb_path, n32, labels.tag_count() as u32)?;
            std::fs::remove_file(&tmp_path)?;
        }
    }
    std::fs::write(&lab_path, labels.to_lab_string())?;
    let stats = CreationStats {
        elem_nodes,
        char_nodes,
        tags: labels.tag_count() as u64,
        time: start.elapsed(),
        arb_bytes: std::fs::metadata(arb_path)?.len(),
        lab_bytes: std::fs::metadata(&lab_path)?.len(),
        evt_bytes: std::fs::metadata(&evt_path)?.len(),
    };
    Ok((stats, labels))
}

/// Creates a `.arb` database directly from an in-memory tree in the
/// default format ([`FormatVersion::V2`]). See
/// [`create_from_tree_with`].
pub fn create_from_tree(
    tree: &BinaryTree,
    labels: &LabelTable,
    arb_path: &Path,
) -> Result<CreationStats, CreateError> {
    create_from_tree_with(tree, labels, arb_path, FormatVersion::default())
}

/// Creates a `.arb` database directly from an in-memory tree (used by the
/// synthetic data generators; a single forward pass suffices because the
/// whole structure is already known). Labels are range-checked: an
/// out-of-range `LabelId` is an error, never a silent truncation. On
/// error, all partial outputs are removed.
pub fn create_from_tree_with(
    tree: &BinaryTree,
    labels: &LabelTable,
    arb_path: &Path,
    format: FormatVersion,
) -> Result<CreationStats, CreateError> {
    let result = create_from_tree_inner(tree, labels, arb_path, format);
    if result.is_err() {
        remove_partial_outputs(arb_path);
    }
    result
}

fn create_from_tree_inner(
    tree: &BinaryTree,
    labels: &LabelTable,
    arb_path: &Path,
    format: FormatVersion,
) -> Result<CreationStats, CreateError> {
    let start = Instant::now();
    let n = tree.len();
    let n32 = u32::try_from(n).map_err(|_| CreateError::other("database exceeds 2^32 nodes"))?;
    let mut elem_nodes = 0u64;
    let mut char_nodes = 0u64;
    let mut count = |label: LabelId| {
        if label.is_text() {
            char_nodes += 1;
        } else {
            elem_nodes += 1;
        }
    };
    match format {
        FormatVersion::V1 => {
            let mut out = BufWriter::with_capacity(64 * 1024, File::create(arb_path)?);
            for v in tree.nodes() {
                let label = tree.label(v);
                count(label);
                let rec = NodeRecord {
                    label,
                    has_first: tree.has_first(v),
                    has_second: tree.has_second(v),
                };
                out.write_all(&rec.checked_bytes()?)?;
            }
            out.flush()?;
        }
        FormatVersion::V2 => {
            // The structure is in memory, so the extent recurrence runs
            // directly over it: end(v) = end(second child) else
            // end(first child) else v + 1 (children have higher preorder
            // indexes, so a reverse loop sees them first).
            let mut ends = vec![0u32; n];
            let mut kinds = vec![0u8; n];
            for v in (0..n32).rev().map(arb_tree::NodeId) {
                let end = if let Some(c) = tree.second_child(v) {
                    ends[c.ix()]
                } else if let Some(c) = tree.first_child(v) {
                    ends[c.ix()]
                } else {
                    v.0 + 1
                };
                ends[v.ix()] = end;
                kinds[v.ix()] = tree.has_first(v) as u8 | (tree.has_second(v) as u8) << 1;
            }
            let mut w = V2Writer::new(File::create(arb_path)?, n32, labels.tag_count() as u32)?;
            for v in tree.nodes() {
                let label = tree.label(v);
                count(label);
                w.push(NodeRecord {
                    label,
                    has_first: tree.has_first(v),
                    has_second: tree.has_second(v),
                })?;
            }
            w.finish(&ends, &kinds)?;
        }
    }
    let lab_path = sibling(arb_path, "lab");
    std::fs::write(&lab_path, labels.to_lab_string())?;
    Ok(CreationStats {
        elem_nodes,
        char_nodes,
        tags: labels.tag_count() as u64,
        time: start.elapsed(),
        arb_bytes: std::fs::metadata(arb_path)?.len(),
        lab_bytes: std::fs::metadata(&lab_path)?.len(),
        evt_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ForwardScan;
    use std::io::Cursor;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "arb-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn creation_matches_in_memory_encoding() {
        let xml = "<a><b>hi</b><c/>x</a>";
        let dir = tmpdir();
        let arb = dir.join("t1.arb");
        let (stats, labels) = create_from_xml_with(
            Cursor::new(xml.as_bytes()),
            &XmlConfig::default(),
            &arb,
            FormatVersion::V1,
        )
        .unwrap();
        assert_eq!(stats.elem_nodes, 3);
        assert_eq!(stats.char_nodes, 3);
        assert_eq!(stats.nodes(), 6);
        assert_eq!(stats.arb_bytes, 12, "v1 keeps the paper's 2n bytes");
        assert_eq!(stats.evt_bytes, 24); // two events * two bytes per node

        // Compare against the in-memory tree encoding.
        let mut lt2 = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut lt2).unwrap();
        let file = std::fs::read(&arb).unwrap();
        let mut scan = ForwardScan::new(Cursor::new(file), tree.len() as u32);
        let mut ix = 0u32;
        while let Some((i, rec)) = scan.next_record().unwrap() {
            assert_eq!(i, ix);
            let v = arb_tree::NodeId(i);
            assert_eq!(rec.has_first, tree.has_first(v), "node {i}");
            assert_eq!(rec.has_second, tree.has_second(v), "node {i}");
            assert_eq!(
                labels.name(rec.label),
                lt2.name(tree.label(v)),
                "node {i} label"
            );
            ix += 1;
        }
        assert_eq!(ix, 6);
    }

    #[test]
    fn from_tree_equals_from_xml_in_both_formats() {
        let xml = "<r><x>ab</x><y><z/></y></r>";
        let dir = tmpdir();
        let mut lt = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut lt).unwrap();
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let via_xml = dir.join(format!("t2a-{format}.arb"));
            create_from_xml_with(
                Cursor::new(xml.as_bytes()),
                &XmlConfig::default(),
                &via_xml,
                format,
            )
            .unwrap();
            let via_tree = dir.join(format!("t2b-{format}.arb"));
            create_from_tree_with(&tree, &lt, &via_tree, format).unwrap();
            assert_eq!(
                std::fs::read(&via_xml).unwrap(),
                std::fs::read(&via_tree).unwrap(),
                "{format} files must be byte-identical from either source"
            );
        }
    }

    #[test]
    fn default_format_is_v2_and_cleans_its_temporary() {
        let xml = "<a><b/>cd</a>";
        let dir = tmpdir();
        let arb = dir.join("t4.arb");
        let (stats, _) =
            create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb).unwrap();
        let bytes = std::fs::read(&arb).unwrap();
        assert_eq!(&bytes[..8], &crate::v2::MAGIC);
        assert_eq!(stats.arb_bytes, bytes.len() as u64);
        assert!(!sibling(&arb, "tmp").exists(), "raw temporary must be gone");
        assert!(sibling(&arb, "evt").exists(), ".evt is kept as in v1");
    }

    #[test]
    fn failed_creation_leaves_no_partial_outputs() {
        let dir = tmpdir();
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let arb = dir.join(format!("t5-{format}.arb"));
            // Unbalanced XML fails in pass 1, after the .evt file exists.
            let err = create_from_xml_with(
                Cursor::new("<a><b></a>".as_bytes()),
                &XmlConfig::default(),
                &arb,
                format,
            );
            assert!(err.is_err());
            for ext in ["arb", "evt", "lab", "tmp"] {
                assert!(
                    !sibling(&arb, ext).exists(),
                    "orphan .{ext} left behind by failed {format} creation"
                );
            }
        }
    }

    #[test]
    fn from_tree_rejects_out_of_range_labels() {
        // A tree whose label never went through the LabelTable (which
        // caps at 16384): encoding must fail, not truncate.
        let lt = LabelTable::new();
        let tree = BinaryTree::from_parts(
            vec![LabelId(1 << 14)],
            vec![arb_tree::NONE],
            vec![arb_tree::NONE],
        )
        .unwrap();
        let dir = tmpdir();
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let arb = dir.join(format!("t6-{format}.arb"));
            assert!(
                create_from_tree_with(&tree, &lt, &arb, format).is_err(),
                "{format} must reject a 15-bit label"
            );
            assert!(!arb.exists(), "partial {format} output left behind");
        }
    }

    #[test]
    fn empty_document_rejected() {
        let dir = tmpdir();
        let arb = dir.join("t3.arb");
        assert!(create_from_xml(Cursor::new("".as_bytes()), &XmlConfig::default(), &arb).is_err());
    }
}
