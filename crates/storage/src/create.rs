//! Two-pass `.arb` database creation (paper Section 5).
//!
//! "In a first pass, we make a SAX parsing run through the XML document
//! to count the total number n of nodes and write the SAX events to a
//! file. Then we create a new file – the .arb database – and start
//! writing it backwards, beginning at an offset of k·n bytes, while
//! reading our SAX events file backward. In this single backward pass, we
//! can transform the document into a binary tree [...] and only require a
//! stack of memory proportional to the depth of the XML tree."

use crate::evt::{Event, EVENT_BYTES};
use crate::format::{NodeRecord, RECORD_BYTES};
use crate::rev::{RevReader, RevWriter};
use arb_tree::{BinaryTree, LabelId, LabelTable};
use arb_xml::{XmlConfig, XmlEvent, XmlParser};
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Statistics of a database creation run — the columns of paper Figure 5.
#[derive(Clone, Debug, Default)]
pub struct CreationStats {
    /// Element nodes inserted (column 1).
    pub elem_nodes: u64,
    /// Character nodes inserted (column 2).
    pub char_nodes: u64,
    /// Number of distinct tags, excluding character labels (column 3).
    pub tags: u64,
    /// Total creation time (column 4).
    pub time: Duration,
    /// `.arb` file size in bytes (column 5) — always `2 * (1) + (2)` ...
    /// precisely `((1)+(2)) * 2`.
    pub arb_bytes: u64,
    /// `.lab` file size in bytes (column 6).
    pub lab_bytes: u64,
    /// Temporary `.evt` file size in bytes (column 7) — twice `.arb`.
    pub evt_bytes: u64,
}

impl CreationStats {
    /// Total node count.
    pub fn nodes(&self) -> u64 {
        self.elem_nodes + self.char_nodes
    }

    /// One row of a Figure-5-style table.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>12} {:>12} {:>6} {:>9.2} {:>13} {:>9} {:>13}",
            name,
            self.elem_nodes,
            self.char_nodes,
            self.tags,
            self.time.as_secs_f64(),
            self.arb_bytes,
            self.lab_bytes,
            self.evt_bytes,
        )
    }

    /// Header matching [`CreationStats::table_row`].
    pub fn table_header() -> &'static str {
        "database       elem nodes   char nodes   tags   time(s)     .arb bytes      .lab    .evt bytes"
    }
}

/// Derived sibling paths for a database base path (`x.arb` →
/// `x.lab`, `x.evt`, `x.sta`).
pub fn sibling(path: &Path, ext: &str) -> PathBuf {
    path.with_extension(ext)
}

/// Pass 1: stream SAX events to the `.evt` file; returns node count.
fn write_events<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    labels: &mut LabelTable,
    evt_path: &Path,
) -> Result<(u64, u64), CreateError> {
    let mut parser = XmlParser::with_config(reader, config.clone());
    let mut out = BufWriter::with_capacity(64 * 1024, File::create(evt_path)?);
    let mut elem_nodes = 0u64;
    let mut char_nodes = 0u64;
    let mut open_labels: Vec<LabelId> = Vec::new();
    loop {
        match parser.next_event().map_err(CreateError::Xml)? {
            XmlEvent::StartTag { name, attrs } => {
                let l = labels
                    .intern(&name)
                    .map_err(|e| CreateError::other(e.to_string()))?;
                out.write_all(&Event::Begin(l).to_bytes())?;
                open_labels.push(l);
                elem_nodes += 1;
                if config.attributes_as_nodes {
                    for (k, v) in &attrs {
                        let al = labels
                            .intern(&format!("@{k}"))
                            .map_err(|e| CreateError::other(e.to_string()))?;
                        out.write_all(&Event::Begin(al).to_bytes())?;
                        elem_nodes += 1;
                        for &b in v.as_bytes() {
                            let cl = LabelId::from_char_byte(b);
                            out.write_all(&Event::Begin(cl).to_bytes())?;
                            out.write_all(&Event::End(cl).to_bytes())?;
                            char_nodes += 1;
                        }
                        out.write_all(&Event::End(al).to_bytes())?;
                    }
                }
            }
            XmlEvent::EndTag { .. } => {
                let l = open_labels.pop().expect("parser guarantees balance");
                out.write_all(&Event::End(l).to_bytes())?;
            }
            XmlEvent::Text(bytes) => {
                for &b in &bytes {
                    let cl = LabelId::from_char_byte(b);
                    out.write_all(&Event::Begin(cl).to_bytes())?;
                    out.write_all(&Event::End(cl).to_bytes())?;
                    char_nodes += 1;
                }
            }
            XmlEvent::Eof => break,
        }
    }
    out.flush()?;
    Ok((elem_nodes, char_nodes))
}

/// Pass 2: read the `.evt` file backwards and write the `.arb` file
/// backwards. The stack is bounded by the XML depth.
fn events_to_arb(evt_path: &Path, arb_path: &Path, n: u64) -> Result<(), CreateError> {
    let evt_file = File::open(evt_path)?;
    let total_evt = evt_file.metadata()?.len();
    let mut rev = RevReader::new(evt_file, total_evt, EVENT_BYTES)?;
    let arb_file = File::create(arb_path)?;
    arb_file.set_len(n * RECORD_BYTES as u64)?;
    let mut out = RevWriter::new(arb_file, n * RECORD_BYTES as u64);

    /// Per-open-node state while reading events backwards.
    struct Frame {
        label: LabelId,
        /// Seen a child End already (=> the node has a first child once
        /// its Begin arrives; before that, each child End tells the next
        /// child that it has a following sibling).
        has_child: bool,
        /// The node has a following sibling (known at its End event from
        /// the parent's `has_child` at that moment).
        has_next: bool,
    }

    let mut stack: Vec<Frame> = Vec::new();
    let mut buf = [0u8; EVENT_BYTES];
    while rev.read_record(&mut buf)?.is_some() {
        match Event::from_bytes(buf) {
            Event::End(label) => {
                let has_next = stack.last().is_some_and(|p| p.has_child);
                if let Some(p) = stack.last_mut() {
                    p.has_child = true;
                }
                stack.push(Frame {
                    label,
                    has_child: false,
                    has_next,
                });
            }
            Event::Begin(label) => {
                let frame = stack.pop().ok_or_else(|| {
                    CreateError::other("event stream underflow (unbalanced events)")
                })?;
                if frame.label != label {
                    return Err(CreateError::other(format!(
                        "event stream corrupt: begin label {} does not match end label {}",
                        label.0, frame.label.0
                    )));
                }
                let rec = NodeRecord {
                    label,
                    has_first: frame.has_child,
                    has_second: frame.has_next,
                };
                out.write_record(&rec.to_bytes())?;
            }
        }
    }
    if !stack.is_empty() {
        return Err(CreateError::other("event stream truncated"));
    }
    out.finish()?;
    Ok(())
}

/// Errors raised during database creation.
#[derive(Debug)]
pub enum CreateError {
    /// I/O failure.
    Io(io::Error),
    /// XML parse failure.
    Xml(arb_xml::XmlError),
    /// Structural failure.
    Other(String),
}

impl CreateError {
    fn other(msg: impl Into<String>) -> Self {
        CreateError::Other(msg.into())
    }
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::Io(e) => write!(f, "I/O error: {e}"),
            CreateError::Xml(e) => write!(f, "{e}"),
            CreateError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CreateError {}

impl From<io::Error> for CreateError {
    fn from(e: io::Error) -> Self {
        CreateError::Io(e)
    }
}

/// Creates a `.arb` database (plus `.lab`) from an XML stream, exactly as
/// the paper prescribes: forward SAX pass to `.evt`, backward pass to
/// `.arb`. `arb_path` should end in `.arb`; the `.lab` and `.evt` files
/// are placed alongside. The `.evt` file is kept (the paper reports its
/// size in Figure 5); callers may delete it.
pub fn create_from_xml<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    arb_path: &Path,
) -> Result<(CreationStats, LabelTable), CreateError> {
    let start = Instant::now();
    let evt_path = sibling(arb_path, "evt");
    let lab_path = sibling(arb_path, "lab");
    let mut labels = LabelTable::new();
    let (elem_nodes, char_nodes) = write_events(reader, config, &mut labels, &evt_path)?;
    let n = elem_nodes + char_nodes;
    if n == 0 {
        return Err(CreateError::other("empty document"));
    }
    events_to_arb(&evt_path, arb_path, n)?;
    std::fs::write(&lab_path, labels.to_lab_string())?;
    let stats = CreationStats {
        elem_nodes,
        char_nodes,
        tags: labels.tag_count() as u64,
        time: start.elapsed(),
        arb_bytes: std::fs::metadata(arb_path)?.len(),
        lab_bytes: std::fs::metadata(&lab_path)?.len(),
        evt_bytes: std::fs::metadata(&evt_path)?.len(),
    };
    Ok((stats, labels))
}

/// Creates a `.arb` database directly from an in-memory tree (used by the
/// synthetic data generators; a single forward pass suffices because the
/// whole structure is already known).
pub fn create_from_tree(
    tree: &BinaryTree,
    labels: &LabelTable,
    arb_path: &Path,
) -> Result<CreationStats, CreateError> {
    let start = Instant::now();
    let mut out = BufWriter::with_capacity(64 * 1024, File::create(arb_path)?);
    let mut elem_nodes = 0u64;
    let mut char_nodes = 0u64;
    for v in tree.nodes() {
        let label = tree.label(v);
        if label.is_text() {
            char_nodes += 1;
        } else {
            elem_nodes += 1;
        }
        let rec = NodeRecord {
            label,
            has_first: tree.has_first(v),
            has_second: tree.has_second(v),
        };
        out.write_all(&rec.to_bytes())?;
    }
    out.flush()?;
    let lab_path = sibling(arb_path, "lab");
    std::fs::write(&lab_path, labels.to_lab_string())?;
    Ok(CreationStats {
        elem_nodes,
        char_nodes,
        tags: labels.tag_count() as u64,
        time: start.elapsed(),
        arb_bytes: std::fs::metadata(arb_path)?.len(),
        lab_bytes: std::fs::metadata(&lab_path)?.len(),
        evt_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ForwardScan;
    use std::io::Cursor;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "arb-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn creation_matches_in_memory_encoding() {
        let xml = "<a><b>hi</b><c/>x</a>";
        let dir = tmpdir();
        let arb = dir.join("t1.arb");
        let (stats, labels) =
            create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb).unwrap();
        assert_eq!(stats.elem_nodes, 3);
        assert_eq!(stats.char_nodes, 3);
        assert_eq!(stats.nodes(), 6);
        assert_eq!(stats.arb_bytes, 12);
        assert_eq!(stats.evt_bytes, 24); // two events * two bytes per node

        // Compare against the in-memory tree encoding.
        let mut lt2 = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut lt2).unwrap();
        let file = std::fs::read(&arb).unwrap();
        let mut scan = ForwardScan::new(Cursor::new(file), tree.len() as u32);
        let mut ix = 0u32;
        while let Some((i, rec)) = scan.next_record().unwrap() {
            assert_eq!(i, ix);
            let v = arb_tree::NodeId(i);
            assert_eq!(rec.has_first, tree.has_first(v), "node {i}");
            assert_eq!(rec.has_second, tree.has_second(v), "node {i}");
            assert_eq!(
                labels.name(rec.label),
                lt2.name(tree.label(v)),
                "node {i} label"
            );
            ix += 1;
        }
        assert_eq!(ix, 6);
    }

    #[test]
    fn from_tree_equals_from_xml() {
        let xml = "<r><x>ab</x><y><z/></y></r>";
        let dir = tmpdir();
        let via_xml = dir.join("t2a.arb");
        create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &via_xml).unwrap();
        let mut lt = LabelTable::new();
        let tree = arb_xml::str_to_tree(xml, &mut lt).unwrap();
        let via_tree = dir.join("t2b.arb");
        create_from_tree(&tree, &lt, &via_tree).unwrap();
        assert_eq!(
            std::fs::read(&via_xml).unwrap(),
            std::fs::read(&via_tree).unwrap()
        );
    }

    #[test]
    fn empty_document_rejected() {
        let dir = tmpdir();
        let arb = dir.join("t3.arb");
        assert!(create_from_xml(Cursor::new("".as_bytes()), &XmlConfig::default(), &arb).is_err());
    }
}
