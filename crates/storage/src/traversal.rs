//! Proposition 5.1: one-scan top-down and bottom-up traversals with
//! stacks bounded by the *XML* (unranked) tree depth.
//!
//! These generic drivers run any fold over the tree structure directly
//! from the record scans — the two-phase query evaluator plugs its
//! automata in here, and the tests plug in tree reconstruction to verify
//! the proposition.

use crate::format::NodeRecord;
use crate::scan::{BackwardScan, ForwardScan};
use std::io::{self, Read, Seek};

/// Runs a bottom-up fold over a backward scan.
///
/// `step(s1, s2, record, ix)` is called exactly once per node, children
/// before parents (`s1`/`s2` are the values computed for the first/second
/// child, `None` for missing children — the pseudo-state ⊥). Returns the
/// root's value.
///
/// The scan may be a range scan over one complete subtree
/// ([`BackwardScan::range`] on a preorder extent): the fold then returns
/// the subtree root's value. A window that is not a whole subtree is
/// rejected as corrupt, exactly like an inconsistent record stream.
///
/// The internal stack holds one value per completed-but-unconsumed
/// subtree, which is bounded by the unranked depth of the document.
pub fn bottom_up_scan<R, S>(
    scan: &mut BackwardScan<R>,
    mut step: impl FnMut(Option<S>, Option<S>, NodeRecord, u32) -> S,
) -> io::Result<S>
where
    R: Read + Seek,
{
    let mut stack: Vec<S> = Vec::new();
    let mut last_ix = None;
    while let Some((ix, rec)) = scan.next_record()? {
        // Reading backwards, the most recently completed subtree is the
        // first child's (its records directly precede... follow v), so it
        // is on top of the stack.
        let s1 = if rec.has_first {
            Some(stack.pop().ok_or_else(corrupt)?)
        } else {
            None
        };
        let s2 = if rec.has_second {
            Some(stack.pop().ok_or_else(corrupt)?)
        } else {
            None
        };
        stack.push(step(s1, s2, rec, ix));
        last_ix = Some(ix);
    }
    if last_ix != Some(scan.start_ix()) || stack.len() != 1 {
        return Err(corrupt());
    }
    Ok(stack.pop().expect("checked length"))
}

/// Preorder subtree extents and child flags, computed from one backward
/// metadata scan (the `subtree_ends` recurrence of the in-memory
/// frontier, run against the record stream instead of a materialized
/// tree): `ends[v]` is one past the last node of `v`'s subtree, so
/// subtree(v) is the record window `[v, ends[v])`; `kinds[v]` has bit 0
/// set iff `v` has a first child and bit 1 iff it has a second — enough
/// for frontier picking without touching labels or building a
/// [`arb_tree::BinaryTree`].
pub fn subtree_extents<R>(scan: &mut BackwardScan<R>, n: u32) -> io::Result<(Vec<u32>, Vec<u8>)>
where
    R: Read + Seek,
{
    let mut ends = vec![0u32; n as usize];
    let mut kinds = vec![0u8; n as usize];
    bottom_up_scan(scan, |s1: Option<u32>, s2, rec, ix| {
        // end(v) = end(second child) else end(first child) else v + 1.
        let end = s2.or(s1).unwrap_or(ix + 1);
        ends[ix as usize] = end;
        kinds[ix as usize] = rec.has_first as u8 | (rec.has_second as u8) << 1;
        end
    })?;
    Ok((ends, kinds))
}

fn corrupt() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        "corrupt .arb file: child flags inconsistent with record stream",
    )
}

/// The context handed to the top-down fold for each node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DownContext<S> {
    /// This node is the root.
    Root,
    /// This node is the `k`-child (1 or 2) of a node that folded to `S`.
    Child(S, u8),
}

/// Runs a top-down fold over a forward scan.
///
/// `step(ctx, record, ix)` is called exactly once per node, parents
/// before children, in preorder. The stack holds parent values awaiting
/// their second child — bounded by the unranked document depth.
pub fn top_down_scan<R, S>(
    scan: &mut ForwardScan<R>,
    mut step: impl FnMut(DownContext<S>, NodeRecord, u32) -> S,
) -> io::Result<()>
where
    R: Read,
    S: Clone,
{
    // Values for nodes whose second-child subtree is still ahead.
    let mut pending: Vec<S> = Vec::new();
    let mut ctx: Option<DownContext<S>> = Some(DownContext::Root);
    while let Some((ix, rec)) = scan.next_record()? {
        let here = ctx.take().ok_or_else(corrupt)?;
        if ix == 0 && !matches!(here, DownContext::Root) {
            return Err(corrupt());
        }
        let s = step(here, rec, ix);
        // Determine the context of the *next* record in preorder.
        ctx = if rec.has_first {
            if rec.has_second {
                pending.push(s.clone());
            }
            Some(DownContext::Child(s, 1))
        } else if rec.has_second {
            Some(DownContext::Child(s, 2))
        } else {
            pending.pop().map(|p| DownContext::Child(p, 2))
        };
    }
    if ctx.is_some() || !pending.is_empty() {
        return Err(corrupt());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::RECORD_BYTES;
    use arb_tree::{BinaryTree, LabelId, LabelTable, NodeId, TreeBuilder, NONE};
    use std::io::Cursor;

    /// Encodes an in-memory tree to a record byte stream (preorder).
    fn encode(tree: &BinaryTree) -> Vec<u8> {
        tree.nodes()
            .flat_map(|v| {
                NodeRecord {
                    label: tree.label(v),
                    has_first: tree.has_first(v),
                    has_second: tree.has_second(v),
                }
                .to_bytes()
            })
            .collect()
    }

    fn sample_tree() -> BinaryTree {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let b = lt.intern("b").unwrap();
        let mut t = TreeBuilder::new();
        t.open(a);
        t.open(b);
        t.text(b"hi");
        t.close();
        t.open(b);
        t.open(a);
        t.close();
        t.close();
        t.leaf(a);
        t.close();
        t.finish().unwrap()
    }

    /// Prop 5.1 (bottom-up): reconstruct the tree from one backward scan.
    #[test]
    fn bottom_up_reconstructs_tree() {
        let tree = sample_tree();
        let bytes = encode(&tree);
        let n = tree.len() as u32;
        let mut scan = BackwardScan::new(Cursor::new(bytes), n).unwrap();
        let mut labels = vec![LabelId(0); n as usize];
        let mut first = vec![NONE; n as usize];
        let mut second = vec![NONE; n as usize];
        // Fold value = preorder index of the subtree root.
        let root_ix = bottom_up_scan(&mut scan, |s1, s2, rec, ix| {
            labels[ix as usize] = rec.label;
            if let Some(c) = s1 {
                first[ix as usize] = c;
            }
            if let Some(c) = s2 {
                second[ix as usize] = c;
            }
            ix
        })
        .unwrap();
        assert_eq!(root_ix, 0);
        let rebuilt = BinaryTree::from_parts(labels, first, second).unwrap();
        assert_eq!(rebuilt.parts(), tree.parts());
    }

    /// Prop 5.1 (top-down): recompute each node's depth and parent from
    /// one forward scan.
    #[test]
    fn top_down_computes_parents() {
        let tree = sample_tree();
        let bytes = encode(&tree);
        let n = tree.len() as u32;
        let mut scan = ForwardScan::new(Cursor::new(bytes), n);
        let mut parent = vec![NONE; n as usize];
        top_down_scan(&mut scan, |ctx, _rec, ix| {
            match ctx {
                DownContext::Root => {}
                DownContext::Child(p, _k) => parent[ix as usize] = p,
            }
            ix
        })
        .unwrap();
        for v in tree.nodes() {
            let expect = tree.parent(v).map_or(NONE, |p| p.0);
            assert_eq!(parent[v.ix()], expect, "node {}", v.0);
        }
    }

    /// Stack depth is bounded by the unranked depth, not the binary depth:
    /// a flat 10k-child document needs only O(1) stack.
    #[test]
    fn stack_bounded_by_unranked_depth() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut t = TreeBuilder::new();
        t.open(a);
        for _ in 0..10_000 {
            t.leaf(a);
        }
        t.close();
        let tree = t.finish().unwrap();
        let bytes = encode(&tree);
        let n = tree.len() as u32;

        // Instrument the bottom-up stack via the fold value: measure the
        // maximum simultaneous outstanding subtrees indirectly by running
        // the fold with a counter of live values.
        let mut live = 0i64;
        let mut max_live = 0i64;
        let mut scan = BackwardScan::new(Cursor::new(bytes.clone()), n).unwrap();
        bottom_up_scan(&mut scan, |s1, s2, _rec, _ix| {
            live += 1 - s1.map_or(0, |_: i64| 1) - s2.map_or(0, |_| 1);
            max_live = max_live.max(live);
            0i64
        })
        .unwrap();
        assert!(max_live <= 3, "stack grew to {max_live}");

        let mut pending_max = 0usize;
        let mut pending_now = 0usize;
        let mut scan = ForwardScan::new(Cursor::new(bytes), n);
        top_down_scan(&mut scan, |ctx, rec, _ix| {
            if rec.has_first && rec.has_second {
                pending_now += 1;
                pending_max = pending_max.max(pending_now);
            }
            if let DownContext::Child(d, 2) = ctx {
                // A second-child context consumes a pending entry only
                // when its parent had both children.
                let _ = d;
            }
            0u32
        })
        .unwrap();
        assert!(pending_max <= 2, "pending grew to {pending_max}");
    }

    /// Subtree extents from the metadata scan match the tree structure,
    /// and a range bottom-up fold over one extent sees exactly that
    /// subtree.
    #[test]
    fn subtree_extents_describe_preorder_windows() {
        let tree = sample_tree();
        let bytes = encode(&tree);
        let n = tree.len() as u32;
        let mut scan = BackwardScan::new(Cursor::new(bytes.clone()), n).unwrap();
        let (ends, kinds) = subtree_extents(&mut scan, n).unwrap();

        assert_eq!(ends[0], n);
        for v in tree.nodes() {
            assert_eq!(kinds[v.ix()] & 1 != 0, tree.has_first(v));
            assert_eq!(kinds[v.ix()] & 2 != 0, tree.has_second(v));
            for c in [tree.first_child(v), tree.second_child(v)]
                .into_iter()
                .flatten()
            {
                assert!(c.0 > v.0 && ends[c.ix()] <= ends[v.ix()]);
            }
            // The window [v, ends[v]) folds bottom-up on its own.
            let mut sub =
                BackwardScan::range(Cursor::new(bytes.clone()), v.0, ends[v.ix()]).unwrap();
            let mut count = 0u32;
            let root_ix = bottom_up_scan(&mut sub, |_: Option<u32>, _, _, ix| {
                count += 1;
                ix
            })
            .unwrap();
            assert_eq!(root_ix, v.0);
            assert_eq!(count, ends[v.ix()] - v.0);
        }

        // A window that is not a whole subtree is rejected.
        let mut bad = BackwardScan::range(Cursor::new(bytes), 0, 2).unwrap();
        assert!(bottom_up_scan(&mut bad, |_: Option<u32>, _, _, ix| ix).is_err());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        // A single record claiming a first child, but no second record.
        let rec = NodeRecord {
            label: LabelId(300),
            has_first: true,
            has_second: false,
        };
        let bytes = rec.to_bytes().to_vec();
        assert_eq!(bytes.len(), RECORD_BYTES);
        let mut scan = BackwardScan::new(Cursor::new(bytes.clone()), 1).unwrap();
        assert!(bottom_up_scan(&mut scan, |_, _, _, ix| ix).is_err());
        let mut scan = ForwardScan::new(Cursor::new(bytes), 1);
        assert!(top_down_scan(&mut scan, |_, _, ix| ix).is_err());
    }

    #[test]
    fn single_node_tree() {
        let rec = NodeRecord {
            label: LabelId(42),
            has_first: false,
            has_second: false,
        };
        let mut scan = BackwardScan::new(Cursor::new(rec.to_bytes().to_vec()), 1).unwrap();
        let got = bottom_up_scan(&mut scan, |s1, s2, r, ix| {
            assert!(s1.is_none() && s2.is_none() && ix == 0);
            r.label.0
        })
        .unwrap();
        assert_eq!(got, 42);
    }

    /// Fuzz-ish: random trees roundtrip through both traversals.
    #[test]
    fn random_trees_roundtrip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut lt = LabelTable::new();
            let a = lt.intern("a").unwrap();
            let mut t = TreeBuilder::new();
            t.open(a);
            let mut open = 1;
            for _ in 0..rng.gen_range(0..200) {
                if open > 1 && rng.gen_bool(0.4) {
                    t.close();
                    open -= 1;
                } else if rng.gen_bool(0.5) {
                    t.open(a);
                    open += 1;
                } else {
                    t.leaf(a);
                }
            }
            while open > 0 {
                t.close();
                open -= 1;
            }
            let tree = t.finish().unwrap();
            let bytes = encode(&tree);
            let n = tree.len() as u32;
            let mut scan = BackwardScan::new(Cursor::new(bytes), n).unwrap();
            let mut count = 0u32;
            bottom_up_scan(&mut scan, |_, _, _, _| count += 1).unwrap();
            assert_eq!(count, n);
            // Every node visited exactly once in each traversal.
            let _ = NodeId(0);
        }
    }
}
