//! In-place updates for v2 `.arb` files (and the pure record-level
//! surgery they are built from).
//!
//! An update edits the preorder record stream: `splice_subtree` replaces
//! one node's *unranked* subtree with a fragment, `append_subtree` adds
//! a fragment as a node's new last child, `delete_subtree` removes an
//! unranked subtree. Because the storage model is positional (first
//! child at `v+1`, next sibling at the end of `v`'s unranked subtree),
//! an edit at position `p` can change at most **one** record below `p`
//! — the referencer whose `has_first`/`has_second` flag points at the
//! edit site — and shifts everything at and above `p`. Record blocks
//! wholly below the first changed record are therefore retained
//! byte-for-byte on disk; only the blocks from the dirty point on are
//! re-encoded (the varint stream is block-relative, so retained and
//! rewritten blocks compose freely). The extent section and block index
//! move with the file length and are always regenerated.
//!
//! Crash safety mirrors creation: the header is stamped with the
//! placeholder version before the first dirty byte is written and
//! re-stamped — with the matching update counter bumped — only after
//! every section is back on disk. A torn update is rejected at open.
//!
//! The *unranked* subtree of `v` spans the records `[v, usub_end(v))`
//! where `usub_end(v) = has_first(v) ? ends[v+1] : v+1` — the binary
//! subtree of `v`'s first child is exactly `v`'s unranked descendants.
//! `v`'s next sibling (its binary second child) sits at the same
//! offset, which is what makes these edits purely positional.

use crate::format::NodeRecord;
use crate::v2::{self, Header};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn bad_input(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// One past the last record of `v`'s **unranked** subtree.
#[inline]
pub fn usub_end(ends: &[u32], kinds: &[u8], v: u32) -> u32 {
    if kinds[v as usize] & 1 != 0 {
        ends[v as usize + 1]
    } else {
        v + 1
    }
}

/// Checks that `frag` is one well-formed single-subtree record sequence:
/// non-empty, child flags consistent (every claimed child exists, no
/// dangling records), and the root claims no next sibling — the edit
/// site decides the root's `has_second`.
pub fn validate_fragment(frag: &[NodeRecord]) -> io::Result<()> {
    if frag.is_empty() {
        return Err(bad_input("empty update fragment"));
    }
    if frag[0].has_second {
        return Err(bad_input(
            "fragment root claims a next sibling (the edit site decides that flag)",
        ));
    }
    let (_, _) = record_extents(frag)?;
    Ok(())
}

/// Per-node subtree extents and child-kind flags of a record slice, by
/// the in-memory mirror of [`crate::traversal::subtree_extents`]. Errors
/// if the records do not describe exactly one well-formed tree.
pub fn record_extents(records: &[NodeRecord]) -> io::Result<(Vec<u32>, Vec<u8>)> {
    let n = records.len();
    let mut ends = vec![0u32; n];
    let mut kinds = vec![0u8; n];
    let mut stack: Vec<u32> = Vec::new();
    for ix in (0..n).rev() {
        let rec = records[ix];
        // First child on top of the stack when reading backwards.
        let s1 = if rec.has_first { stack.pop() } else { None };
        let s2 = if rec.has_second { stack.pop() } else { None };
        if (rec.has_first && s1.is_none()) || (rec.has_second && s2.is_none()) {
            return Err(invalid(format!("record {ix} claims a missing child")));
        }
        let end = s2.or(s1).unwrap_or(ix as u32 + 1);
        ends[ix] = end;
        kinds[ix] = rec.has_first as u8 | ((rec.has_second as u8) << 1);
        stack.push(end);
    }
    if stack.len() != 1 {
        return Err(invalid(format!(
            "records describe {} trees, not one",
            stack.len()
        )));
    }
    Ok((ends, kinds))
}

/// Rebuilds an in-memory [`arb_tree::BinaryTree`] from a preorder record
/// slice — the memory backend's half of an update (the record-level
/// surgery is shared; only the persistence differs).
pub fn records_to_tree(records: &[NodeRecord]) -> io::Result<arb_tree::BinaryTree> {
    use arb_tree::NONE;
    let n = records.len();
    let mut lab = vec![arb_tree::LabelId(0); n];
    let mut first = vec![NONE; n];
    let mut second = vec![NONE; n];
    let mut stack: Vec<u32> = Vec::new();
    for ix in (0..n).rev() {
        let rec = records[ix];
        lab[ix] = rec.label;
        if rec.has_first {
            first[ix] = stack.pop().ok_or_else(|| invalid("missing first child"))?;
        }
        if rec.has_second {
            second[ix] = stack.pop().ok_or_else(|| invalid("missing second child"))?;
        }
        stack.push(ix as u32);
    }
    if stack.len() != 1 {
        return Err(invalid("records describe more than one tree"));
    }
    arb_tree::BinaryTree::from_parts(lab, first, second).map_err(invalid)
}

/// A planned record-level edit: replace `[pos, pos + removed)` with
/// `inserted` fragment records, after patching at most one record below
/// `pos` (`flag_node`, the referencer whose child flag the edit flips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditPlan {
    /// First record of the replaced window (also the fragment position).
    pub pos: u32,
    /// Records removed at `pos`.
    pub removed: u32,
    /// Fragment records inserted at `pos`.
    pub inserted: u32,
    /// `(index, new record)` of the one record below `pos` whose child
    /// flag the edit changes, if any.
    pub flag_node: Option<(u32, NodeRecord)>,
    /// `has_second` the fragment root inherits at `pos` (whether the
    /// edited site has a next sibling).
    pub frag_root_second: bool,
}

impl EditPlan {
    /// First record index the edit changes — where the on-disk dirty
    /// region (and the dirty spine of incremental re-evaluation) starts.
    pub fn dirty_from(&self) -> u32 {
        match self.flag_node {
            Some((ix, _)) => ix.min(self.pos),
            None => self.pos,
        }
    }
}

fn check_node(n: usize, v: u32, what: &str) -> io::Result<()> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(bad_input(format!(
            "{what} {v} outside the {n}-record database"
        )))
    }
}

/// Plans replacing the unranked subtree at `at` with a `frag_len`-record
/// fragment. No record below `at` changes: the fragment root inherits
/// `at`'s next-sibling flag, and `at`'s referencer keeps pointing at the
/// same position.
pub fn plan_splice(
    records: &[NodeRecord],
    ends: &[u32],
    kinds: &[u8],
    at: u32,
    frag_len: u32,
) -> io::Result<EditPlan> {
    check_node(records.len(), at, "splice target")?;
    let end = usub_end(ends, kinds, at);
    Ok(EditPlan {
        pos: at,
        removed: end - at,
        inserted: frag_len,
        flag_node: None,
        frag_root_second: records[at as usize].has_second,
    })
}

/// Plans appending a `frag_len`-record fragment as the new **last
/// child** of `under`: the fragment lands after the current last child's
/// unranked subtree (or at `under + 1` for a childless node), and that
/// one referencer gains a child flag.
pub fn plan_append(
    records: &[NodeRecord],
    ends: &[u32],
    kinds: &[u8],
    under: u32,
    frag_len: u32,
) -> io::Result<EditPlan> {
    check_node(records.len(), under, "append target")?;
    if records[under as usize].label.is_text() {
        return Err(bad_input(format!(
            "append target {under} is a character node"
        )));
    }
    if !records[under as usize].has_first {
        let mut rec = records[under as usize];
        rec.has_first = true;
        return Ok(EditPlan {
            pos: under + 1,
            removed: 0,
            inserted: frag_len,
            flag_node: Some((under, rec)),
            frag_root_second: false,
        });
    }
    // Walk the child chain to the last child.
    let mut c = under + 1;
    while kinds[c as usize] & 2 != 0 {
        c = usub_end(ends, kinds, c);
    }
    let mut rec = records[c as usize];
    rec.has_second = true;
    Ok(EditPlan {
        pos: usub_end(ends, kinds, c),
        removed: 0,
        inserted: frag_len,
        flag_node: Some((c, rec)),
        frag_root_second: false,
    })
}

/// Plans deleting the unranked subtree at `at`. With a next sibling the
/// removal is purely positional (the sibling slides into `at`'s slot);
/// without one, `at`'s referencer — found by descending the binary
/// ancestor path from the root, O(depth) — loses its child flag.
pub fn plan_delete(
    records: &[NodeRecord],
    ends: &[u32],
    kinds: &[u8],
    at: u32,
) -> io::Result<EditPlan> {
    check_node(records.len(), at, "delete target")?;
    if at == 0 {
        return Err(bad_input("cannot delete the document root"));
    }
    let end = usub_end(ends, kinds, at);
    let flag_node = if records[at as usize].has_second {
        None
    } else {
        let p = binary_parent(ends, kinds, at)?;
        let mut rec = records[p as usize];
        if p + 1 == at && rec.has_first {
            rec.has_first = false;
        } else {
            rec.has_second = false;
        }
        Some((p, rec))
    };
    Ok(EditPlan {
        pos: at,
        removed: end - at,
        inserted: 0,
        flag_node,
        frag_root_second: false,
    })
}

/// The binary parent of `at` (the node whose first- or second-child
/// position is `at`), by descent from the root along binary subtree
/// windows.
fn binary_parent(ends: &[u32], kinds: &[u8], at: u32) -> io::Result<u32> {
    let mut cur = 0u32;
    loop {
        let first = (kinds[cur as usize] & 1 != 0).then_some(cur + 1);
        let second = (kinds[cur as usize] & 2 != 0).then(|| usub_end(ends, kinds, cur));
        if first == Some(at) || second == Some(at) {
            return Ok(cur);
        }
        cur = match (first, second) {
            (Some(f), _) if at < ends[f as usize] => f,
            (_, Some(s)) if at >= s && at < ends[s as usize] => s,
            _ => {
                return Err(invalid(format!(
                    "node {at} unreachable from the root (corrupt extents?)"
                )))
            }
        };
    }
}

/// Applies a planned edit to the record vector: patches the referencer,
/// then splices the fragment (with the root's inherited next-sibling
/// flag) over the removed window.
pub fn apply_edit(records: &mut Vec<NodeRecord>, plan: &EditPlan, frag: &[NodeRecord]) {
    if let Some((ix, rec)) = plan.flag_node {
        records[ix as usize] = rec;
    }
    let mut patched: Vec<NodeRecord> = frag.to_vec();
    if let Some(root) = patched.first_mut() {
        root.has_second = plan.frag_root_second;
    }
    let lo = plan.pos as usize;
    records.splice(lo..lo + plan.removed as usize, patched);
}

/// One update operation, as a value — what [`crate::db::ArbDatabase::apply_update`]
/// and the engine's update plumbing pass around. Fragments are
/// pre-interned record slices (label resolution happens at the layer
/// that owns the label table).
#[derive(Debug, Clone, Copy)]
pub enum UpdateOp<'a> {
    /// Append `frag` as the new last child of `under`.
    AppendChild {
        /// Preorder index of the parent-to-be.
        under: u32,
        /// The fragment records.
        frag: &'a [NodeRecord],
    },
    /// Replace the unranked subtree at `at` with `frag`.
    SpliceSubtree {
        /// Preorder index of the subtree root to replace.
        at: u32,
        /// The fragment records.
        frag: &'a [NodeRecord],
    },
    /// Delete the unranked subtree at `at`.
    DeleteSubtree {
        /// Preorder index of the subtree root to remove.
        at: u32,
    },
}

/// Outcome of one applied update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// The planned edit (positions in the **new** index space for the
    /// window; `flag_node` below `pos` is unshifted).
    pub plan: EditPlan,
    /// Node count before the update.
    pub old_nodes: u32,
    /// Node count after the update.
    pub new_nodes: u32,
    /// The file's epoch after the update.
    pub epoch: u64,
    /// Record blocks retained byte-for-byte on disk.
    pub retained_blocks: u32,
    /// Record blocks (re)written.
    pub rewritten_blocks: u32,
}

/// In-place updater for one v2 `.arb` file. Holds the decoded record
/// stream and extents in memory (O(n) — the same order as one
/// evaluation's node sets), applies edits, and rewrites only the record
/// blocks from each edit's dirty point on. **Not** coordinated with
/// concurrent readers of the same file: callers (the engine's
/// `Database::apply_update`, the server's write lock) serialize access.
pub struct ArbUpdater {
    path: PathBuf,
    header: Header,
    /// File offsets of the current record blocks.
    offsets: Vec<u64>,
    records: Vec<NodeRecord>,
    ends: Vec<u32>,
    kinds: Vec<u8>,
}

impl ArbUpdater {
    /// Opens a v2 file for updating, decoding all record blocks and
    /// extents. v1 files are rejected — updates are a v2 feature.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut f = File::open(&path)?;
        let file_len = f.metadata()?.len();
        let mut magic = [0u8; 8];
        if file_len < 8 {
            return Err(invalid("file too short to be a v2 .arb database"));
        }
        f.read_exact(&mut magic)?;
        if magic != v2::MAGIC {
            return Err(bad_input(
                "in-place updates require format v2 (recreate the database with --format v2)",
            ));
        }
        let meta = v2::read_meta(&mut f, file_len)?;
        let n = meta.header.node_count;
        let mut records = Vec::with_capacity(n as usize);
        let mut scratch = Vec::new();
        let mut block = Vec::new();
        for (b, &off) in meta.map.offsets.iter().enumerate() {
            v2::read_block(
                &mut f,
                off,
                meta.map.records_in(b as u32),
                &mut scratch,
                &mut block,
            )?;
            records.extend_from_slice(&block);
        }
        let mut ends = Vec::with_capacity(n as usize);
        let mut kinds = Vec::with_capacity(n as usize);
        for w in 0..v2::extent_windows(n) {
            let (e, k) = v2::read_extent_window(
                &mut f,
                meta.header.extent_offset,
                n,
                w,
                meta.header.extent_format,
            )?;
            ends.extend_from_slice(&e);
            kinds.extend_from_slice(&k);
        }
        Ok(ArbUpdater {
            path,
            header: meta.header,
            offsets: meta.map.offsets.clone(),
            records,
            ends,
            kinds,
        })
    }

    /// Current node count.
    pub fn node_count(&self) -> u32 {
        self.records.len() as u32
    }

    /// Current epoch (updates ever applied to the file).
    pub fn epoch(&self) -> u64 {
        self.header.epoch()
    }

    /// Current decoded records (for callers planning edits themselves).
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Current extents `(ends, kinds)`.
    pub fn extents(&self) -> (&[u32], &[u8]) {
        (&self.ends, &self.kinds)
    }

    /// Declares the tag count of the (caller-rewritten) `.lab` file —
    /// for updates whose fragment interned new labels. Takes effect on
    /// the next applied update.
    pub fn set_tag_count(&mut self, tag_count: u32) {
        self.header.tag_count = tag_count;
    }

    /// Replaces the unranked subtree at `at` with `frag`.
    pub fn splice_subtree(&mut self, at: u32, frag: &[NodeRecord]) -> io::Result<UpdateReport> {
        validate_fragment(frag)?;
        let plan = plan_splice(
            &self.records,
            &self.ends,
            &self.kinds,
            at,
            frag.len() as u32,
        )?;
        self.commit(plan, frag, |h| h.splices += 1)
    }

    /// Appends `frag` as the new last child of `under`.
    pub fn append_subtree(&mut self, under: u32, frag: &[NodeRecord]) -> io::Result<UpdateReport> {
        validate_fragment(frag)?;
        let plan = plan_append(
            &self.records,
            &self.ends,
            &self.kinds,
            under,
            frag.len() as u32,
        )?;
        self.commit(plan, frag, |h| h.appends += 1)
    }

    /// Deletes the unranked subtree at `at` (the root is not deletable).
    pub fn delete_subtree(&mut self, at: u32) -> io::Result<UpdateReport> {
        let plan = plan_delete(&self.records, &self.ends, &self.kinds, at)?;
        self.commit(plan, &[], |h| h.deletes += 1)
    }

    /// Applies one [`UpdateOp`] (value-form dispatch over the three
    /// operations above).
    pub fn apply(&mut self, op: &UpdateOp<'_>) -> io::Result<UpdateReport> {
        match *op {
            UpdateOp::AppendChild { under, frag } => self.append_subtree(under, frag),
            UpdateOp::SpliceSubtree { at, frag } => self.splice_subtree(at, frag),
            UpdateOp::DeleteSubtree { at } => self.delete_subtree(at),
        }
    }

    /// Applies a planned edit in memory and rewrites the file from the
    /// first dirty block on, placeholder-header first.
    fn commit(
        &mut self,
        plan: EditPlan,
        frag: &[NodeRecord],
        bump: impl FnOnce(&mut Header),
    ) -> io::Result<UpdateReport> {
        let old_nodes = self.records.len() as u32;
        let new_len = self.records.len() as u64 - plan.removed as u64 + plan.inserted as u64;
        if new_len > u32::MAX as u64 {
            return Err(bad_input("update would exceed 2^32 nodes"));
        }
        if new_len == 0 {
            return Err(bad_input("update would empty the database"));
        }
        apply_edit(&mut self.records, &plan, frag);
        let (ends, kinds) = record_extents(&self.records)?;
        self.ends = ends;
        self.kinds = kinds;

        let r = self.header.block_records;
        let retained = (plan.dirty_from() / r).min(self.offsets.len() as u32);
        let new_blocks = (self.records.len() as u64).div_ceil(r as u64) as u32;

        let mut f = OpenOptions::new().read(true).write(true).open(&self.path)?;
        // Invalidate: real magic, placeholder version — a crash from
        // here on is rejected at open, exactly like a torn creation.
        let mut ph = [0u8; v2::HEADER_BYTES];
        ph[0..8].copy_from_slice(&v2::MAGIC);
        ph[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        f.seek(SeekFrom::Start(0))?;
        f.write_all(&ph)?;

        // Rewrite record blocks from the dirty one on, at the retained
        // prefix's end (block offsets below `retained` are unchanged).
        let mut pos = if (retained as usize) < self.offsets.len() {
            self.offsets[retained as usize]
        } else {
            self.header.extent_offset
        };
        self.offsets.truncate(retained as usize);
        f.seek(SeekFrom::Start(pos))?;
        let mut out = io::BufWriter::with_capacity(256 * 1024, &mut f);
        let mut body = Vec::new();
        for b in retained..new_blocks {
            let lo = b as usize * r as usize;
            let hi = (lo + r as usize).min(self.records.len());
            v2::encode_block(&self.records[lo..hi], &mut body);
            self.offsets.push(pos);
            out.write_all(&((hi - lo) as u32).to_le_bytes())?;
            out.write_all(&(body.len() as u32).to_le_bytes())?;
            out.write_all(&v2::crc32(&body).to_le_bytes())?;
            out.write_all(&body)?;
            pos += 12 + body.len() as u64;
        }
        let extent_offset = pos;
        let section = v2::build_extent_section(&self.ends, &self.kinds, extent_offset);
        out.write_all(&section)?;
        pos += section.len() as u64;
        let index_offset = pos;
        let mut index = Vec::with_capacity(self.offsets.len() * 8);
        for &o in &self.offsets {
            index.extend_from_slice(&o.to_le_bytes());
        }
        out.write_all(&index)?;
        out.write_all(&v2::crc32(&index).to_le_bytes())?;
        pos += index.len() as u64 + 4;
        out.flush()?;
        drop(out);
        f.set_len(pos)?;

        bump(&mut self.header);
        self.header.node_count = self.records.len() as u32;
        self.header.block_count = new_blocks;
        self.header.extent_offset = extent_offset;
        self.header.index_offset = index_offset;
        self.header.extent_format = v2::ExtentFormat::Compressed;
        f.seek(SeekFrom::Start(0))?;
        f.write_all(&self.header.to_bytes())?;
        f.flush()?;

        Ok(UpdateReport {
            plan,
            old_nodes,
            new_nodes: self.records.len() as u32,
            epoch: self.header.epoch(),
            retained_blocks: retained,
            rewritten_blocks: new_blocks - retained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create::FormatVersion;
    use crate::db::ArbDatabase;
    use arb_tree::LabelTable;
    use arb_xml::XmlConfig;
    use std::io::Cursor;
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("arb-upd-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn create(xml: &str, name: &str) -> PathBuf {
        let arb = tmp(name);
        crate::create::create_from_xml_with(
            Cursor::new(xml.as_bytes()),
            &XmlConfig::default(),
            &arb,
            FormatVersion::V2,
        )
        .unwrap();
        arb
    }

    /// Parses fragment XML against the database's label table, rewriting
    /// the `.lab` file and declaring the new tag count on the updater if
    /// the fragment interned new tags — the offline-update label flow.
    fn frag(arb: &Path, u: &mut ArbUpdater, xml: &str) -> Vec<NodeRecord> {
        let db = ArbDatabase::open(arb).unwrap();
        let mut labels = db.labels().clone();
        let tree = arb_xml::str_to_tree(xml, &mut labels).unwrap();
        if labels.tag_count() != db.labels().tag_count() {
            std::fs::write(crate::create::sibling(arb, "lab"), labels.to_lab_string()).unwrap();
        }
        u.set_tag_count(labels.tag_count() as u32);
        tree_records(&tree)
    }

    fn tree_records(tree: &arb_tree::BinaryTree) -> Vec<NodeRecord> {
        tree.nodes()
            .map(|v| {
                let info = tree.info(v);
                NodeRecord {
                    label: info.label,
                    has_first: info.has_first,
                    has_second: info.has_second,
                }
            })
            .collect()
    }

    /// The updated file must byte-for-byte describe the same tree as a
    /// fresh creation of the edited XML.
    fn assert_same_tree(arb: &Path, xml: &str) {
        let db = ArbDatabase::open(arb).unwrap();
        let tree = db.to_tree().unwrap();
        let mut lt = LabelTable::new();
        let direct = arb_xml::str_to_tree(xml, &mut lt).unwrap();
        assert_eq!(tree.len(), direct.len(), "node count after update");
        for v in tree.nodes() {
            assert_eq!(tree.has_first(v), direct.has_first(v), "node {}", v.0);
            assert_eq!(tree.has_second(v), direct.has_second(v), "node {}", v.0);
            assert_eq!(
                db.labels().name(tree.label(v)),
                lt.name(direct.label(v)),
                "node {}",
                v.0
            );
        }
        db.validate().unwrap();
        // Extents must equal a from-scratch recomputation.
        let recomputed = record_extents(&tree_records(&tree)).unwrap();
        let cached = db.subtree_extents().unwrap();
        assert_eq!(cached.ends, recomputed.0);
        assert_eq!(cached.kinds, recomputed.1);
    }

    #[test]
    fn splice_replaces_a_subtree() {
        // <doc><a><b/>x</a><c/></doc>: a at 1, c at 5.
        let arb = create("<doc><a><b/>x</a><c/></doc>", "sp1.arb");
        let mut u = ArbUpdater::open(&arb).unwrap();
        assert_eq!(u.epoch(), 0);
        let f = frag(&arb, &mut u, "<p><q/></p>");
        let rep = u.splice_subtree(1, &f).unwrap();
        assert_eq!(rep.plan.pos, 1);
        assert_eq!(rep.plan.removed, 3);
        assert_eq!(rep.plan.inserted, 2);
        assert_eq!(rep.epoch, 1);
        assert_same_tree(&arb, "<doc><p><q/></p><c/></doc>");
    }

    #[test]
    fn append_under_childless_and_after_last_child() {
        let arb = create("<doc><a/><c/></doc>", "ap1.arb");
        let mut u = ArbUpdater::open(&arb).unwrap();
        let f = frag(&arb, &mut u, "<c/>");
        // Childless: <a/> gains its first child.
        let rep = u.append_subtree(1, &f).unwrap();
        assert_eq!(rep.plan.flag_node.map(|(ix, _)| ix), Some(1));
        assert_same_tree(&arb, "<doc><a><c/></a><c/></doc>");
        // With children: doc's last child chain ends at the trailing <c/>.
        let rep = u.append_subtree(0, &f).unwrap();
        assert_eq!(rep.epoch, 2);
        assert_same_tree(&arb, "<doc><a><c/></a><c/><c/></doc>");
    }

    #[test]
    fn delete_with_and_without_sibling() {
        let arb = create("<doc><a><b/></a><c/><d/></doc>", "dl1.arb");
        let mut u = ArbUpdater::open(&arb).unwrap();
        // <a> has a next sibling: purely positional removal.
        let rep = u.delete_subtree(1).unwrap();
        assert!(rep.plan.flag_node.is_none());
        assert_same_tree(&arb, "<doc><c/><d/></doc>");
        // <d> (last child): its referencer <c> loses has_second.
        let rep = u.delete_subtree(2).unwrap();
        assert_eq!(rep.plan.flag_node.map(|(ix, _)| ix), Some(1));
        assert_same_tree(&arb, "<doc><c/></doc>");
        // Deleting the last remaining child clears the root's has_first.
        let rep = u.delete_subtree(1).unwrap();
        assert_eq!(rep.plan.flag_node.map(|(ix, _)| ix), Some(0));
        assert_same_tree(&arb, "<doc></doc>");
        assert!(u.delete_subtree(0).is_err(), "root is not deletable");
        assert_eq!(u.epoch(), 3);
    }

    #[test]
    fn updates_only_rewrite_dirty_blocks() {
        // Two blocks; edit a subtree in the second block.
        let inner = "<a/>".repeat(v2::BLOCK_RECORDS as usize + 64);
        let xml = format!("<doc>{inner}</doc>");
        let arb = create(&xml, "blk1.arb");
        let mut u = ArbUpdater::open(&arb).unwrap();
        let n = u.node_count();
        let f = frag(&arb, &mut u, "<a><a/></a>");
        let rep = u.splice_subtree(n - 1, &f).unwrap();
        assert_eq!(rep.retained_blocks, 1, "block 0 is untouched");
        assert_eq!(rep.rewritten_blocks, 1);
        let db = ArbDatabase::open(&arb).unwrap();
        assert_eq!(db.node_count(), n + 1);
        assert_eq!(db.epoch(), 1);
        db.validate().unwrap();
    }

    #[test]
    fn fragment_validation_rejects_malformed_input() {
        let arb = create("<doc><a/></doc>", "bad1.arb");
        let mut u = ArbUpdater::open(&arb).unwrap();
        assert!(u.splice_subtree(1, &[]).is_err(), "empty fragment");
        let dangling = [NodeRecord {
            label: arb_tree::LabelId(300),
            has_first: true,
            has_second: false,
        }];
        assert!(u.splice_subtree(1, &dangling).is_err(), "missing child");
        let sibling_root = [NodeRecord {
            label: arb_tree::LabelId(300),
            has_first: false,
            has_second: true,
        }];
        assert!(
            u.splice_subtree(1, &sibling_root).is_err(),
            "root with next-sibling flag"
        );
        let ok = frag(&arb, &mut u, "<a/>");
        assert!(u.splice_subtree(99, &ok).is_err());
        assert!(u.delete_subtree(99).is_err());
    }

    #[test]
    fn v1_files_are_rejected() {
        let arb = tmp("v1.arb");
        crate::create::create_from_xml_with(
            Cursor::new(b"<doc><a/></doc>".as_slice()),
            &XmlConfig::default(),
            &arb,
            FormatVersion::V1,
        )
        .unwrap();
        let err = ArbUpdater::open(&arb).err().expect("v1 must be rejected");
        assert!(err.to_string().contains("v2"), "{err}");
    }
}
