//! The temporary `.sta` state file connecting the two phases.
//!
//! "Since the run of A may be very large and B needs to process it, we
//! write it to the disk. In our implementation, we write the pointer to
//! the internal data structure of the residual program ρA(v) for each
//! node v, in the order we visit the nodes. Our temporary file thus
//! consumes four bytes per node." (paper footnote 12)
//!
//! Phase 1 visits nodes backwards, so state ids are written through a
//! [`RevWriter`] and land at offset `4·ix` for preorder index `ix`;
//! phase 2 then reads the file forward, aligned with its forward `.arb`
//! scan.

use crate::rev::RevWriter;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes per state entry.
pub const STATE_BYTES: usize = 4;

/// A uniquely named scratch-file path that deletes the file when
/// dropped. Evaluations obtain one via
/// [`ArbDatabase::scratch_sta`](crate::ArbDatabase::scratch_sta) so that
/// concurrent runs over the same database never share a `.sta` stream.
#[derive(Debug)]
pub struct ScratchPath {
    path: PathBuf,
}

impl ScratchPath {
    /// Wraps a path in a delete-on-drop guard.
    pub fn new(path: PathBuf) -> Self {
        ScratchPath { path }
    }

    /// The scratch path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchPath {
    fn drop(&mut self) {
        // Best effort: the file may never have been created (boolean
        // verdicts skip the `.sta` stream entirely).
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Pre-sizes a state file for `n` nodes without writing any states —
/// the coordinator of a sharded run calls this once before workers open
/// their disjoint [`StateFileWriter::segment`]s of it.
pub fn allocate(path: &Path, n: u64) -> io::Result<()> {
    let f = File::create(path)?;
    f.set_len(n * STATE_BYTES as u64)?;
    Ok(())
}

/// Writes state ids during the backward phase-1 scan.
pub struct StateFileWriter {
    inner: RevWriter<File>,
}

impl StateFileWriter {
    /// Creates a state file for `n` nodes.
    pub fn create(path: &Path, n: u64) -> io::Result<Self> {
        allocate(path, n)?;
        let f = OpenOptions::new().write(true).open(path)?;
        Ok(StateFileWriter {
            inner: RevWriter::new(f, n * STATE_BYTES as u64),
        })
    }

    /// Opens the node window `[lo, hi)` of an existing state file (see
    /// [`allocate`]) for backward writing: the worker assigned the
    /// frontier subtree `[lo, hi)` streams exactly `hi − lo` states into
    /// its slice, without touching (or truncating) the rest of the file.
    pub fn segment(path: &Path, lo: u64, hi: u64) -> io::Result<Self> {
        let f = OpenOptions::new().write(true).open(path)?;
        Ok(StateFileWriter {
            inner: RevWriter::for_range(f, lo * STATE_BYTES as u64, hi * STATE_BYTES as u64),
        })
    }

    /// Writes the state of the next node (phase 1 visits `n−1 .. 0`).
    pub fn write_state(&mut self, state: u32) -> io::Result<()> {
        self.inner.write_record(&state.to_le_bytes())
    }

    /// Finishes; errors if fewer or more than `n` states were written.
    pub fn finish(self) -> io::Result<()> {
        self.inner.finish()?;
        Ok(())
    }
}

/// Reads state ids in preorder during the forward phase-2 scan.
pub struct StateFileReader {
    inner: BufReader<File>,
}

impl StateFileReader {
    /// Opens a state file.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_at(path, 0)
    }

    /// Opens a state file positioned on node `lo`'s state — phase-2
    /// workers read their subtree's slice in lockstep with a forward
    /// record range scan.
    pub fn open_at(path: &Path, lo: u64) -> io::Result<Self> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(lo * STATE_BYTES as u64))?;
        Ok(StateFileReader {
            inner: BufReader::with_capacity(64 * 1024, f),
        })
    }

    /// Reads the next state id.
    pub fn read_state(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; STATE_BYTES];
        self.inner.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
}

/// Random-access state writes — the sequential spine of a sharded run is
/// a handful of scattered nodes, patched individually into the shared
/// state file after the workers fill their segments.
pub struct StateFilePatcher {
    f: File,
}

impl StateFilePatcher {
    /// Opens an existing state file (see [`allocate`]) for patching.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(StateFilePatcher {
            f: OpenOptions::new().write(true).open(path)?,
        })
    }

    /// Writes node `ix`'s state at its slot.
    pub fn write_state_at(&mut self, ix: u64, state: u32) -> io::Result<()> {
        self.f.seek(SeekFrom::Start(ix * STATE_BYTES as u64))?;
        self.f.write_all(&state.to_le_bytes())
    }
}

/// In-memory variant used when the whole run fits in RAM (small trees,
/// tests): same interface, no file.
#[derive(Default)]
pub struct MemStates {
    states: Vec<u32>,
}

impl MemStates {
    /// Storage for `n` states.
    pub fn new(n: usize) -> Self {
        MemStates {
            states: vec![u32::MAX; n],
        }
    }

    /// Records the state of node `ix`.
    pub fn set(&mut self, ix: u32, state: u32) {
        self.states[ix as usize] = state;
    }

    /// The state of node `ix`.
    pub fn get(&self, ix: u32) -> u32 {
        self.states[ix as usize]
    }
}

/// Ensures a file handle's cursor sits at the start (paranoia helper for
/// reuse across scans).
pub fn rewind(f: &mut File) -> io::Result<()> {
    f.seek(std::io::SeekFrom::Start(0))?;
    Ok(())
}

/// Writes raw bytes at a path (test helper).
pub fn write_all(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_write_forward_read() {
        let dir = std::env::temp_dir().join(format!("arb-sta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.sta");
        let n = 1000u32;
        let mut w = StateFileWriter::create(&path, n as u64).unwrap();
        // Phase-1 order: node n-1 first.
        for ix in (0..n).rev() {
            w.write_state(ix * 3).unwrap();
        }
        w.finish().unwrap();
        let mut r = StateFileReader::open(&path).unwrap();
        for ix in 0..n {
            assert_eq!(r.read_state().unwrap(), ix * 3);
        }
    }

    #[test]
    fn finish_detects_missing_states() {
        let dir = std::env::temp_dir().join(format!("arb-sta2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("y.sta");
        let mut w = StateFileWriter::create(&path, 3).unwrap();
        w.write_state(1).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn mem_states() {
        let mut m = MemStates::new(4);
        m.set(2, 99);
        assert_eq!(m.get(2), 99);
    }

    #[test]
    fn segments_and_patches_compose_into_one_state_stream() {
        let dir = std::env::temp_dir().join(format!("arb-sta3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.sta");
        let n = 100u64;
        allocate(&path, n).unwrap();

        // Two "workers" fill [10, 40) and [40, 100) backwards; the
        // "spine" nodes [0, 10) are patched individually.
        for (lo, hi) in [(10u64, 40u64), (40, 100)] {
            let mut w = StateFileWriter::segment(&path, lo, hi).unwrap();
            for ix in (lo..hi).rev() {
                w.write_state(ix as u32 * 7).unwrap();
            }
            w.finish().unwrap();
        }
        let mut p = StateFilePatcher::open(&path).unwrap();
        for ix in 0..10u64 {
            p.write_state_at(ix, ix as u32 * 7).unwrap();
        }

        // A plain forward read sees one coherent stream.
        let mut r = StateFileReader::open(&path).unwrap();
        for ix in 0..n {
            assert_eq!(r.read_state().unwrap(), ix as u32 * 7);
        }
        // A positioned read starts mid-stream.
        let mut r = StateFileReader::open_at(&path, 40).unwrap();
        assert_eq!(r.read_state().unwrap(), 280);

        // A segment must fill exactly its window.
        let mut w = StateFileWriter::segment(&path, 0, 3).unwrap();
        w.write_state(1).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn scratch_path_deletes_on_drop() {
        let dir = std::env::temp_dir().join(format!("arb-sta4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scratch.sta");
        let guard = ScratchPath::new(path.clone());
        allocate(guard.path(), 8).unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists());
        // Dropping a guard whose file was never created is fine.
        drop(ScratchPath::new(dir.join("never-created.sta")));
    }
}
