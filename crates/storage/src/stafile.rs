//! The temporary `.sta` state stream connecting the two phases.
//!
//! "Since the run of A may be very large and B needs to process it, we
//! write it to the disk. In our implementation, we write the pointer to
//! the internal data structure of the residual program ρA(v) for each
//! node v, in the order we visit the nodes. Our temporary file thus
//! consumes four bytes per node." (paper footnote 12)
//!
//! Two layouts implement that contract behind one API, selected by
//! [`StaFormat`] (default [`StaFormat::Blocked`], overridable with
//! `ARB_STA_FORMAT=flat`):
//!
//! * **flat** — the paper's layout verbatim: a bare array of `n`
//!   little-endian `u32` state ids. Phase 1 visits nodes backwards, so
//!   ids are written through a [`RevWriter`] and land at offset `4·ix`
//!   for preorder index `ix`; sharded runs pre-[`allocate`] the file and
//!   write disjoint byte windows concurrently.
//!
//! * **blocked** — a block-framed compressed stream mirroring the v2
//!   record design (see [`crate::v2`]). States are grouped into
//!   fixed-record-count blocks ([`DEFAULT_BLOCK_RECORDS`], overridable
//!   with `ARB_STA_BLOCK_RECORDS` for boundary tests); each block body
//!   opens with the block's **default state** (its most frequent
//!   run value — the role the schema default plays in skip-default
//!   encodings) and then a token stream of LEB128 varints `v` with
//!   `v & 3` as the tag:
//!
//!   | tag | meaning |
//!   |-----|---------|
//!   | 0 | literal: `state = prev + unzigzag(v >> 2)`, updates `prev` |
//!   | 1 | a run of `v >> 2` nodes whose state **is the default** (the skip-default elision — such nodes cost amortized well under a byte) |
//!   | 2 | a run of `v >> 2` repeats of `prev` (run-length encoding) |
//!   | 3 | reserved — rejected as `InvalidData` |
//!
//!   `prev` starts at the default state per block. Each block is framed
//!   `{n_records: u32, body_len: u32, crc32(body): u32}` and decodes
//!   into a reusable buffer, so phase 2 serves states from a decoded
//!   block with a bounds check instead of one buffered 4-byte file read
//!   per node.
//!
//! Because compressed blocks have variable length, a backward writer
//! cannot drop them at their final offsets the way the flat layout can.
//! A blocked **segment** `[lo, hi)` is therefore its own append-only
//! side file (`<path>.seg-<lo>`): the writer buffers one block of
//! states, and every time the backward pass crosses a block's lower
//! boundary it reverses the buffer, encodes, and appends the finished
//! frame — blocks land in reverse block order and a checksummed footer
//! (per-block file offsets, forward order) plus an 8-byte trailer
//! (footer offset) make them seekable again. Sharded runs compose
//! exactly as in the flat layout: the coordinator's [`allocate`] writes
//! a small manifest at `<path>`, each worker appends its own segment
//! file concurrently, and the spine patcher writes `(ix, state)` pairs
//! to `<path>.patch`. A sequential run writes one segment `[0, n)`
//! directly at `<path>`. [`StateFileReader`] stitches segments and
//! patches back into one preorder stream; coverage gaps, truncated
//! frames, checksum damage and reserved tags all surface as
//! `InvalidData` with context — never a bare `UnexpectedEof`.

use crate::rev::RevWriter;
use crate::v2::crc32;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes per state entry in the flat layout (and per *decoded* state).
pub const STATE_BYTES: usize = 4;

/// Magic of a blocked segment file.
pub const SEG_MAGIC: [u8; 8] = *b"ArbSTA1\0";
/// Magic of a blocked multi-segment manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"ArbSTAm\0";
/// Magic of a blocked patch (spine) file.
pub const PATCH_MAGIC: [u8; 8] = *b"ArbSTAp\0";

/// Records per blocked-stream block (128 KiB of flat-equivalent payload).
pub const DEFAULT_BLOCK_RECORDS: u32 = 32 * 1024;

/// Segment header: magic, lo, hi, block_records.
const SEG_HEADER_BYTES: u64 = 8 + 8 + 8 + 4;
/// Per-block frame: record count, body length, body CRC32.
const BLOCK_FRAME_BYTES: usize = 12;
/// Manifest: magic, node count, block_records, CRC32 of the first 20.
const MANIFEST_BYTES: u64 = 8 + 8 + 4 + 4;
/// Patch entry: node index (u64) + state (u32).
const PATCH_ENTRY_BYTES: u64 = 12;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The on-disk layout of the `.sta` stream (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaFormat {
    /// Block-framed compressed stream (delta/varint + run-length +
    /// skip-default). The default.
    #[default]
    Blocked,
    /// The paper's bare 4-bytes-per-node layout (footnote 12), kept
    /// selectable (`ARB_STA_FORMAT=flat`) for differential suites and
    /// ablation benchmarks.
    Flat,
}

impl StaFormat {
    /// Parses a format name (`"blocked"`/`"flat"`, case-insensitive).
    pub fn parse(s: &str) -> Option<StaFormat> {
        match s.to_ascii_lowercase().as_str() {
            "blocked" | "block" => Some(StaFormat::Blocked),
            "flat" | "raw" => Some(StaFormat::Flat),
            _ => None,
        }
    }

    /// The format selected by `ARB_STA_FORMAT`, defaulting to
    /// [`StaFormat::Blocked`] (unknown values fall back to the default).
    pub fn from_env() -> StaFormat {
        std::env::var("ARB_STA_FORMAT")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for StaFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StaFormat::Blocked => "blocked",
            StaFormat::Flat => "flat",
        })
    }
}

/// Records per block, honoring the `ARB_STA_BLOCK_RECORDS` override
/// (clamped to `[16, 1Mi]`; the tiny end exists so differential tests
/// can straddle many block boundaries on small documents).
pub fn block_records_from_env() -> u32 {
    std::env::var("ARB_STA_BLOCK_RECORDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|v| v.clamp(16, 1 << 20))
        .unwrap_or(DEFAULT_BLOCK_RECORDS)
}

/// A uniquely named scratch-file path that deletes the file **and every
/// sibling side file** (`<path>.seg-*`, `<path>.patch`) when dropped.
/// Evaluations obtain one via
/// [`ArbDatabase::scratch_sta`](crate::ArbDatabase::scratch_sta) so that
/// concurrent runs over the same database never share a `.sta` stream.
#[derive(Debug)]
pub struct ScratchPath {
    path: PathBuf,
}

impl ScratchPath {
    /// Wraps a path in a delete-on-drop guard.
    pub fn new(path: PathBuf) -> Self {
        ScratchPath { path }
    }

    /// The scratch path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchPath {
    fn drop(&mut self) {
        // Best effort: the files may never have been created (boolean
        // verdicts skip the `.sta` stream entirely). The scratch name is
        // unique (pid + counter), so the `<name>.` prefix match cannot
        // hit another run's files.
        let _ = std::fs::remove_file(&self.path);
        let (Some(dir), Some(name)) = (
            self.path.parent(),
            self.path.file_name().and_then(|n| n.to_str()),
        ) else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let f = e.file_name();
            if let Some(f) = f.to_str() {
                if f.len() > name.len() && f.starts_with(name) && f.as_bytes()[name.len()] == b'.' {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }
}

/// Deletes stale scratch streams a **dead** process left next to a
/// database: `ScratchPath`'s delete-on-drop cannot run when the process
/// is killed (Ctrl-C, SIGKILL, OOM), so a long-lived server sweeps at
/// startup instead. The scratch name embeds the owning pid
/// (`<stem>.p<pid>-<seq>.sta` plus `.seg-*`/`.patch` side files); a
/// file is removed only when its pid is not the current process and is
/// provably not running (`/proc/<pid>` absent). On platforms without
/// `/proc`, liveness cannot be checked and nothing is removed. Returns
/// the paths that were swept.
pub fn sweep_stale_scratch(db_path: &Path) -> io::Result<Vec<PathBuf>> {
    let Some(dir) = db_path.parent().filter(|d| !d.as_os_str().is_empty()) else {
        return Ok(Vec::new());
    };
    let Some(stem) = db_path.file_stem().and_then(|s| s.to_str()) else {
        return Ok(Vec::new());
    };
    let prefix = format!("{stem}.p");
    let mut swept = Vec::new();
    for e in std::fs::read_dir(dir)?.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = scratch_owner_pid(name, &prefix) else {
            continue;
        };
        if pid == std::process::id() || pid_alive(pid) {
            continue;
        }
        let path = e.path();
        if std::fs::remove_file(&path).is_ok() {
            swept.push(path);
        }
    }
    Ok(swept)
}

/// Parses the owning pid out of a scratch-file name of the shape
/// `<prefix><pid>-<seq>.sta[.<side>]`; `None` for anything else.
fn scratch_owner_pid(name: &str, prefix: &str) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?;
    let (pid_digits, rest) = rest.split_once('-')?;
    let pid: u32 = pid_digits.parse().ok()?;
    let (seq_digits, rest) = rest.split_once(".sta")?;
    if seq_digits.is_empty() || !seq_digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    // The base stream (`…​.sta`) or one of its side files (`….sta.seg-8`,
    // `….sta.patch`) — never an unrelated longer extension.
    if rest.is_empty() || rest.starts_with('.') {
        Some(pid)
    } else {
        None
    }
}

/// True when `pid` is verifiably running; errs on the side of "alive"
/// where liveness cannot be checked (no `/proc`).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

fn seg_path(base: &Path, lo: u64) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".seg-{lo}"));
    PathBuf::from(os)
}

fn patch_path(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".patch");
    PathBuf::from(os)
}

/// Prepares a shared state stream for `n` nodes without writing any
/// states — the coordinator of a sharded run calls this once before
/// workers open their disjoint [`StateFileWriter::segment`]s. Flat:
/// pre-sizes the file (workers write disjoint byte windows of it).
/// Blocked: writes a manifest recording `n` (workers append their own
/// side files). Returns the encoded bytes this step itself produced.
pub fn allocate(path: &Path, n: u64, format: StaFormat) -> io::Result<u64> {
    match format {
        StaFormat::Flat => {
            let f = File::create(path)?;
            f.set_len(n * STATE_BYTES as u64)?;
            Ok(0) // the n·4 payload is accounted to the segment writers
        }
        StaFormat::Blocked => {
            let mut bytes = Vec::with_capacity(MANIFEST_BYTES as usize);
            bytes.extend_from_slice(&MANIFEST_MAGIC);
            bytes.extend_from_slice(&n.to_le_bytes());
            bytes.extend_from_slice(&block_records_from_env().to_le_bytes());
            let crc = crc32(&bytes);
            bytes.extend_from_slice(&crc.to_le_bytes());
            let mut f = File::create(path)?;
            f.write_all(&bytes)?;
            f.flush()?;
            Ok(bytes.len() as u64)
        }
    }
}

// --- blocked codec ----------------------------------------------------

#[inline]
fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag64(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

#[inline]
fn push_varint64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn read_varint64(body: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    for shift in 0..10u32 {
        let b = *body
            .get(*pos)
            .ok_or_else(|| invalid(".sta block body truncated inside a varint"))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << (7 * shift);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(invalid("varint longer than 10 bytes in .sta block body"))
}

/// Encodes one block of states (forward preorder) as a token stream,
/// reusing `runs` as scratch. See the module docs for the token grammar.
fn encode_sta_block(states: &[u32], runs: &mut Vec<(u32, u32)>, out: &mut Vec<u8>) {
    out.clear();
    runs.clear();
    for &s in states {
        match runs.last_mut() {
            Some((v, len)) if *v == s => *len += 1,
            _ => runs.push((s, 1)),
        }
    }
    // The block's default state: the run value covering the most nodes.
    let mut totals: HashMap<u32, u64> = HashMap::new();
    for &(v, len) in runs.iter() {
        *totals.entry(v).or_insert(0) += len as u64;
    }
    let default = totals
        .into_iter()
        .max_by_key(|&(v, total)| (total, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
        .unwrap_or(0);
    push_varint64(out, default as u64);
    let mut prev = default;
    for &(v, len) in runs.iter() {
        if v == default {
            push_varint64(out, ((len as u64) << 2) | 1);
        } else {
            // Tag 0 (literal) is the two low zero bits of the shift.
            push_varint64(out, zigzag64(v as i64 - prev as i64) << 2);
            prev = v;
            if len > 1 {
                push_varint64(out, (((len - 1) as u64) << 2) | 2);
            }
        }
    }
}

/// Decodes one block body into `out` (cleared first). Length and count
/// mismatches, reserved tags, and out-of-range states are `InvalidData`.
fn decode_sta_block(body: &[u8], n_records: u32, out: &mut Vec<u32>) -> io::Result<()> {
    out.clear();
    out.reserve(n_records as usize);
    let n = n_records as usize;
    let mut pos = 0usize;
    let default = read_varint64(body, &mut pos)?;
    if default > u32::MAX as u64 {
        return Err(invalid(".sta block default state out of range"));
    }
    let default = default as u32;
    let mut prev = default;
    while out.len() < n {
        let v = read_varint64(body, &mut pos)?;
        match v & 3 {
            0 => {
                let s = prev as i64 + unzigzag64(v >> 2);
                if !(0..=u32::MAX as i64).contains(&s) {
                    return Err(invalid(".sta literal state out of the u32 range"));
                }
                prev = s as u32;
                out.push(prev);
            }
            tag @ (1 | 2) => {
                let count = v >> 2;
                if count == 0 || count > (n - out.len()) as u64 {
                    return Err(invalid(".sta run overruns its block"));
                }
                let fill = if tag == 1 { default } else { prev };
                for _ in 0..count {
                    out.push(fill);
                }
            }
            _ => return Err(invalid("reserved token tag 3 in .sta block")),
        }
    }
    if pos != body.len() {
        return Err(invalid(".sta block body longer than its record count"));
    }
    Ok(())
}

/// The append-only writer of one blocked segment file covering `[lo, hi)`
/// (see the module docs for why blocks land in reverse completion order).
struct BlockedSegWriter {
    out: BufWriter<File>,
    lo: u64,
    hi: u64,
    block_records: u32,
    /// Next index to receive a state is `pos − 1`; counts down to `lo`.
    pos: u64,
    /// States of the block being filled, in reverse (visit) order.
    cur: Vec<u32>,
    /// Per block (forward order), the file offset of its frame.
    offsets: Vec<u64>,
    file_pos: u64,
    body: Vec<u8>,
    runs: Vec<(u32, u32)>,
}

fn sta_block_count(lo: u64, hi: u64, block_records: u32) -> u64 {
    (hi - lo).div_ceil(block_records as u64)
}

impl BlockedSegWriter {
    fn create(path: &Path, lo: u64, hi: u64, block_records: u32) -> io::Result<Self> {
        debug_assert!(lo <= hi && block_records >= 1);
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&SEG_MAGIC)?;
        out.write_all(&lo.to_le_bytes())?;
        out.write_all(&hi.to_le_bytes())?;
        out.write_all(&block_records.to_le_bytes())?;
        let blocks = sta_block_count(lo, hi, block_records) as usize;
        Ok(BlockedSegWriter {
            out,
            lo,
            hi,
            block_records,
            pos: hi,
            cur: Vec::with_capacity(block_records.min(1 << 16) as usize),
            offsets: vec![u64::MAX; blocks],
            file_pos: SEG_HEADER_BYTES,
            body: Vec::new(),
            runs: Vec::new(),
        })
    }

    fn write_state(&mut self, state: u32) -> io::Result<()> {
        if self.pos == self.lo {
            return Err(invalid(format!(
                "segment [{}, {}) received more states than it holds",
                self.lo, self.hi
            )));
        }
        self.cur.push(state);
        self.pos -= 1;
        if self.pos == self.lo || (self.pos - self.lo).is_multiple_of(self.block_records as u64) {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends the finished block `[self.pos, self.pos + cur.len())`.
    fn flush_block(&mut self) -> io::Result<()> {
        self.cur.reverse();
        encode_sta_block(&self.cur, &mut self.runs, &mut self.body);
        let j = ((self.pos - self.lo) / self.block_records as u64) as usize;
        self.offsets[j] = self.file_pos;
        self.out.write_all(&(self.cur.len() as u32).to_le_bytes())?;
        self.out
            .write_all(&(self.body.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&self.body).to_le_bytes())?;
        self.out.write_all(&self.body)?;
        self.file_pos += (BLOCK_FRAME_BYTES + self.body.len()) as u64;
        self.cur.clear();
        Ok(())
    }

    /// Writes footer + trailer; errors unless exactly `hi − lo` states
    /// arrived. Returns the segment file's total size in bytes.
    fn finish(mut self) -> io::Result<u64> {
        if self.pos != self.lo {
            return Err(invalid(format!(
                "segment [{}, {}) finished with {} states missing",
                self.lo,
                self.hi,
                self.pos - self.lo
            )));
        }
        debug_assert!(self.cur.is_empty());
        let footer_offset = self.file_pos;
        let mut footer = Vec::with_capacity(self.offsets.len() * 8 + 4);
        for &off in &self.offsets {
            debug_assert_ne!(off, u64::MAX, "every block must have been flushed");
            footer.extend_from_slice(&off.to_le_bytes());
        }
        let crc = crc32(&footer);
        footer.extend_from_slice(&crc.to_le_bytes());
        self.out.write_all(&footer)?;
        self.out.write_all(&footer_offset.to_le_bytes())?;
        self.out.flush()?;
        Ok(footer_offset + footer.len() as u64 + 8)
    }
}

/// One opened blocked segment: validated header + footer index, blocks
/// loaded on demand.
struct BlockedSegment {
    f: File,
    lo: u64,
    hi: u64,
    block_records: u32,
    offsets: Vec<u64>,
    /// Where the footer starts — one past the last block frame (block 0,
    /// which the backward writer appended last).
    footer_offset: u64,
}

impl BlockedSegment {
    fn open(path: &Path) -> io::Result<Self> {
        let mut f = File::open(path)?;
        let len = f.metadata()?.len();
        let mut header = [0u8; SEG_HEADER_BYTES as usize];
        read_exact_ctx(&mut f, &mut header, "segment header")?;
        if header[..8] != SEG_MAGIC {
            return Err(invalid(format!(
                "{}: not a blocked .sta segment (bad magic)",
                path.display()
            )));
        }
        let lo = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let hi = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let block_records = u32::from_le_bytes(header[24..28].try_into().unwrap());
        if lo > hi || !(1..=1 << 22).contains(&block_records) {
            return Err(invalid("implausible .sta segment header"));
        }
        let blocks = sta_block_count(lo, hi, block_records);
        let footer_len = blocks * 8 + 4;
        if len < SEG_HEADER_BYTES + footer_len + 8 {
            return Err(invalid("state segment truncated (no footer)"));
        }
        f.seek(SeekFrom::Start(len - 8))?;
        let mut tr = [0u8; 8];
        read_exact_ctx(&mut f, &mut tr, "segment trailer")?;
        let footer_offset = u64::from_le_bytes(tr);
        if footer_offset < SEG_HEADER_BYTES || footer_offset + footer_len + 8 != len {
            return Err(invalid("state segment truncated (bad footer offset)"));
        }
        f.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len as usize];
        read_exact_ctx(&mut f, &mut footer, "segment footer")?;
        let (body, crc_bytes) = footer.split_at(footer.len() - 4);
        if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
            return Err(invalid("state segment footer checksum mismatch"));
        }
        let offsets: Vec<u64> = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for &off in &offsets {
            if off < SEG_HEADER_BYTES || off >= footer_offset {
                return Err(invalid("state segment block offset out of range"));
            }
        }
        Ok(BlockedSegment {
            f,
            lo,
            hi,
            block_records,
            offsets,
            footer_offset,
        })
    }

    /// Record count of block `j` (the last block is short).
    fn block_len(&self, j: usize) -> u32 {
        let start = self.lo + j as u64 * self.block_records as u64;
        (self.hi - start).min(self.block_records as u64) as u32
    }

    /// Decodes block `j` into `out`.
    fn load_block(&mut self, j: usize, out: &mut Vec<u32>, body: &mut Vec<u8>) -> io::Result<()> {
        let expect = self.block_len(j);
        self.f.seek(SeekFrom::Start(self.offsets[j]))?;
        let mut frame = [0u8; BLOCK_FRAME_BYTES];
        read_exact_ctx(&mut self.f, &mut frame, "block frame")?;
        let n_records = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        let body_len = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let crc = u32::from_le_bytes(frame[8..12].try_into().unwrap());
        if n_records != expect {
            return Err(invalid(format!(
                ".sta block {j} holds {n_records} records, expected {expect}"
            )));
        }
        // Worst-case body: one 10-byte varint per record plus the default.
        if body_len as u64 > 10 * (n_records as u64 + 1) {
            return Err(invalid(".sta block body length implausibly large"));
        }
        body.clear();
        body.resize(body_len as usize, 0);
        read_exact_ctx(&mut self.f, body, "block body")?;
        if crc32(body) != crc {
            return Err(invalid(".sta block checksum mismatch"));
        }
        decode_sta_block(body, n_records, out)
    }
}

/// Turns a short read anywhere inside the blocked layout into
/// `InvalidData` with context (the reader contract: truncation is
/// corruption, not EOF).
fn read_exact_ctx(f: &mut impl Read, buf: &mut [u8], what: &str) -> io::Result<()> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("state file truncated reading the {what}"))
        } else {
            e
        }
    })
}

/// Reads the `<path>.patch` spine file into a map (absent file = empty).
fn load_patch(base: &Path) -> io::Result<HashMap<u64, u32>> {
    let p = patch_path(base);
    let bytes = match std::fs::read(&p) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    if bytes.len() < 8 || bytes[..8] != PATCH_MAGIC || (bytes.len() - 8) % 12 != 0 {
        return Err(invalid("state patch file truncated or malformed"));
    }
    let mut map = HashMap::with_capacity((bytes.len() - 8) / 12);
    for entry in bytes[8..].chunks_exact(12) {
        let ix = u64::from_le_bytes(entry[0..8].try_into().unwrap());
        let state = u32::from_le_bytes(entry[8..12].try_into().unwrap());
        map.insert(ix, state);
    }
    Ok(map)
}

// --- the public writer/reader/patcher facade --------------------------

enum WriterInner {
    Flat(RevWriter<File>, u64),
    Blocked(BlockedSegWriter),
}

/// Writes state ids during the backward phase-1 scan.
pub struct StateFileWriter {
    inner: WriterInner,
}

impl StateFileWriter {
    /// Creates a state stream for `n` nodes (a sequential run's single
    /// segment `[0, n)`).
    pub fn create(path: &Path, n: u64, format: StaFormat) -> io::Result<Self> {
        match format {
            StaFormat::Flat => {
                allocate(path, n, StaFormat::Flat)?;
                let f = OpenOptions::new().write(true).open(path)?;
                Ok(StateFileWriter {
                    inner: WriterInner::Flat(RevWriter::new(f, n * STATE_BYTES as u64), n),
                })
            }
            StaFormat::Blocked => Ok(StateFileWriter {
                inner: WriterInner::Blocked(BlockedSegWriter::create(
                    path,
                    0,
                    n,
                    block_records_from_env(),
                )?),
            }),
        }
    }

    /// Opens the node window `[lo, hi)` of a shared state stream (see
    /// [`allocate`]) for backward writing: the worker assigned the
    /// frontier subtree `[lo, hi)` streams exactly `hi − lo` states into
    /// its slice — a byte window of the flat file, an own side file in
    /// the blocked layout — without touching the other workers' slices.
    pub fn segment(path: &Path, lo: u64, hi: u64, format: StaFormat) -> io::Result<Self> {
        match format {
            StaFormat::Flat => {
                let f = OpenOptions::new().write(true).open(path)?;
                Ok(StateFileWriter {
                    inner: WriterInner::Flat(
                        RevWriter::for_range(f, lo * STATE_BYTES as u64, hi * STATE_BYTES as u64),
                        hi - lo,
                    ),
                })
            }
            StaFormat::Blocked => Ok(StateFileWriter {
                inner: WriterInner::Blocked(BlockedSegWriter::create(
                    &seg_path(path, lo),
                    lo,
                    hi,
                    block_records_from_env(),
                )?),
            }),
        }
    }

    /// Writes the state of the next node (phase 1 visits `hi−1 .. lo`).
    pub fn write_state(&mut self, state: u32) -> io::Result<()> {
        match &mut self.inner {
            WriterInner::Flat(w, _) => w.write_record(&state.to_le_bytes()),
            WriterInner::Blocked(w) => w.write_state(state),
        }
    }

    /// Finishes; errors if fewer or more than `hi − lo` states were
    /// written. Returns the encoded bytes this writer put on disk.
    pub fn finish(self) -> io::Result<u64> {
        match self.inner {
            WriterInner::Flat(w, n) => {
                w.finish()?;
                Ok(n * STATE_BYTES as u64)
            }
            WriterInner::Blocked(w) => w.finish(),
        }
    }
}

enum ReaderInner {
    Flat(BufReader<File>),
    Blocked {
        /// Non-overlapping segments, sorted by `lo`.
        segments: Vec<BlockedSegment>,
        /// Spine patches (node → state) covering the gaps.
        patch: HashMap<u64, u32>,
        /// Logical stream length in nodes.
        n: u64,
        /// Cursor into `segments`.
        seg_idx: usize,
        /// Decoded states of the current block.
        buf: Vec<u32>,
        buf_pos: usize,
        body: Vec<u8>,
    },
}

/// Reads state ids in preorder during the forward phase-2 scan. In the
/// blocked layout each `read_state` serves from the current decoded
/// block — whole-block decode, then a bounds check per node.
pub struct StateFileReader {
    inner: ReaderInner,
    /// Next preorder index to serve (also the truncation-error context).
    ix: u64,
    /// States served so far (`× 4` = decoded bytes).
    served: u64,
}

impl StateFileReader {
    /// Opens a state stream from node 0.
    pub fn open(path: &Path, format: StaFormat) -> io::Result<Self> {
        Self::open_at(path, 0, format)
    }

    /// Opens a state stream positioned on node `lo` — phase-2 workers
    /// read their subtree's slice in lockstep with a forward record
    /// range scan.
    pub fn open_at(path: &Path, lo: u64, format: StaFormat) -> io::Result<Self> {
        let inner = match format {
            StaFormat::Flat => {
                let mut f = File::open(path)?;
                f.seek(SeekFrom::Start(lo * STATE_BYTES as u64))?;
                ReaderInner::Flat(BufReader::with_capacity(64 * 1024, f))
            }
            StaFormat::Blocked => {
                let mut head = [0u8; 8];
                {
                    let mut f = File::open(path)?;
                    read_exact_ctx(&mut f, &mut head, "stream magic")?;
                }
                let (mut segments, n) = if head == SEG_MAGIC {
                    let seg = BlockedSegment::open(path)?;
                    let n = seg.hi;
                    (vec![seg], n)
                } else if head == MANIFEST_MAGIC {
                    let bytes = std::fs::read(path)?;
                    if bytes.len() != MANIFEST_BYTES as usize
                        || crc32(&bytes[..20])
                            != u32::from_le_bytes(bytes[20..24].try_into().unwrap())
                    {
                        return Err(invalid("state manifest truncated or corrupt"));
                    }
                    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
                    let mut segments = Vec::new();
                    let (Some(dir), Some(name)) =
                        (path.parent(), path.file_name().and_then(|s| s.to_str()))
                    else {
                        return Err(invalid("state manifest path has no parent directory"));
                    };
                    let prefix = format!("{name}.seg-");
                    for e in std::fs::read_dir(dir)? {
                        let e = e?;
                        if e.file_name()
                            .to_str()
                            .is_some_and(|f| f.starts_with(&prefix))
                        {
                            segments.push(BlockedSegment::open(&e.path())?);
                        }
                    }
                    (segments, n)
                } else {
                    return Err(invalid(format!(
                        "{}: not a blocked .sta stream (bad magic)",
                        path.display()
                    )));
                };
                segments.sort_by_key(|s| s.lo);
                for w in segments.windows(2) {
                    if w[1].lo < w[0].hi {
                        return Err(invalid("overlapping .sta segments"));
                    }
                }
                ReaderInner::Blocked {
                    segments,
                    patch: load_patch(path)?,
                    n,
                    seg_idx: 0,
                    buf: Vec::new(),
                    buf_pos: 0,
                    body: Vec::new(),
                }
            }
        };
        Ok(StateFileReader {
            inner,
            ix: lo,
            served: 0,
        })
    }

    /// Reads the next state id. A stream ending early (truncated flat
    /// file, missing segment coverage, damaged block) is `InvalidData`
    /// with the failing node index — never a bare `UnexpectedEof`.
    #[inline]
    pub fn read_state(&mut self) -> io::Result<u32> {
        if let ReaderInner::Blocked { buf, buf_pos, .. } = &mut self.inner {
            if *buf_pos < buf.len() {
                let s = buf[*buf_pos];
                *buf_pos += 1;
                self.ix += 1;
                self.served += 1;
                return Ok(s);
            }
        }
        self.read_state_slow()
    }

    fn read_state_slow(&mut self) -> io::Result<u32> {
        let ix = self.ix;
        let s = match &mut self.inner {
            ReaderInner::Flat(r) => {
                let mut b = [0u8; STATE_BYTES];
                r.read_exact(&mut b).map_err(|e| {
                    if e.kind() == io::ErrorKind::UnexpectedEof {
                        invalid(format!("state file truncated: no state for node {ix}"))
                    } else {
                        e
                    }
                })?;
                u32::from_le_bytes(b)
            }
            ReaderInner::Blocked {
                segments,
                patch,
                n,
                seg_idx,
                buf,
                buf_pos,
                body,
            } => {
                if ix >= *n {
                    return Err(invalid(format!(
                        "read past the end of the state stream (node {ix} of {n})"
                    )));
                }
                while *seg_idx < segments.len() && ix >= segments[*seg_idx].hi {
                    *seg_idx += 1;
                }
                match segments.get_mut(*seg_idx) {
                    Some(seg) if ix >= seg.lo => {
                        let j = ((ix - seg.lo) / seg.block_records as u64) as usize;
                        seg.load_block(j, buf, body)?;
                        *buf_pos = ((ix - seg.lo) % seg.block_records as u64) as usize;
                        let s = buf[*buf_pos];
                        *buf_pos += 1;
                        s
                    }
                    _ => match patch.get(&ix) {
                        Some(&s) => {
                            // A spine node between segments; keep the
                            // block buffer empty so the fast path skips.
                            buf.clear();
                            *buf_pos = 0;
                            s
                        }
                        None => {
                            return Err(invalid(format!(
                                "state stream truncated: no segment or patch covers node {ix}"
                            )))
                        }
                    },
                }
            }
        };
        self.ix += 1;
        self.served += 1;
        Ok(s)
    }

    /// Bytes of state data this reader delivered so far (4 per state —
    /// the *decoded* side of the stats split).
    pub fn decoded_bytes(&self) -> u64 {
        self.served * STATE_BYTES as u64
    }
}

enum PatcherInner {
    Flat(File),
    Blocked { out: BufWriter<File>, entries: u64 },
}

/// Random-access state writes — the sequential spine of a sharded run is
/// a handful of scattered nodes, patched individually into the shared
/// state stream after the workers fill their segments. Flat: in-place
/// 4-byte writes at `4·ix`. Blocked: `(ix, state)` pairs appended to the
/// `<path>.patch` side file, merged by the reader.
pub struct StateFilePatcher {
    inner: PatcherInner,
}

impl StateFilePatcher {
    /// Opens a shared state stream (see [`allocate`]) for patching.
    pub fn open(path: &Path, format: StaFormat) -> io::Result<Self> {
        let inner = match format {
            StaFormat::Flat => PatcherInner::Flat(OpenOptions::new().write(true).open(path)?),
            StaFormat::Blocked => {
                let mut out = BufWriter::new(File::create(patch_path(path))?);
                out.write_all(&PATCH_MAGIC)?;
                PatcherInner::Blocked { out, entries: 0 }
            }
        };
        Ok(StateFilePatcher { inner })
    }

    /// Writes node `ix`'s state at its slot.
    pub fn write_state_at(&mut self, ix: u64, state: u32) -> io::Result<()> {
        match &mut self.inner {
            PatcherInner::Flat(f) => {
                f.seek(SeekFrom::Start(ix * STATE_BYTES as u64))?;
                f.write_all(&state.to_le_bytes())
            }
            PatcherInner::Blocked { out, entries } => {
                out.write_all(&ix.to_le_bytes())?;
                out.write_all(&state.to_le_bytes())?;
                *entries += 1;
                Ok(())
            }
        }
    }

    /// Flushes; returns the encoded bytes the patches put on disk.
    pub fn finish(self) -> io::Result<u64> {
        match self.inner {
            PatcherInner::Flat(f) => {
                f.sync_data().ok();
                Ok(0) // flat patches overwrite pre-allocated slots
            }
            PatcherInner::Blocked { mut out, entries } => {
                out.flush()?;
                Ok(8 + entries * PATCH_ENTRY_BYTES)
            }
        }
    }
}

/// Report of one [`rewrite_blocked`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaRewrite {
    /// Block frames byte-copied from the previous stream, unverified and
    /// un-re-encoded.
    pub retained_blocks: u32,
    /// Blocks re-encoded from the new state array.
    pub rewritten_blocks: u32,
}

/// Rewrites a **blocked, single-segment** `.sta` stream at `path` for a
/// new epoch of its document. `states` is the complete new phase-1 state
/// array; every state at an index below `dirty_from` is unchanged from
/// the stream already on disk (a subtree edit shifts and restates only
/// indexes from the edit's dirty point on — see [`crate::update`]).
///
/// Blocks wholly below `dirty_from` are **byte-copied**: because the
/// backward writer appends blocks in reverse block order, blocks
/// `k-1..0` sit in one contiguous range at the end of the old frame
/// area, so retention is a single bulk copy with the footer offsets
/// shifted — no decode, no re-encode. Only blocks from the dirty point
/// on are re-encoded. The result replaces `path` atomically
/// (`<path>.tmp` + rename), so a crash leaves the old epoch's stream
/// intact.
pub fn rewrite_blocked(path: &Path, states: &[u32], dirty_from: u64) -> io::Result<StaRewrite> {
    if dirty_from > states.len() as u64 {
        return Err(invalid("dirty_from beyond the new state array"));
    }
    let mut old = BlockedSegment::open(path)?;
    if old.lo != 0 {
        return Err(invalid(
            "rewrite requires a single full segment (sharded streams are per-run scratch)",
        ));
    }
    let r = old.block_records;
    let new_n = states.len() as u64;
    // A block is retainable only if it is full and identical in both
    // epochs: wholly below the dirty point (and hence below both lengths).
    let retained = ((dirty_from / r as u64).min(old.hi / r as u64) as usize).min(old.offsets.len());
    let new_blocks = sta_block_count(0, new_n, r) as usize;
    let retained = retained.min(new_blocks);

    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut out = BufWriter::new(File::create(&tmp)?);
    out.write_all(&SEG_MAGIC)?;
    out.write_all(&0u64.to_le_bytes())?;
    out.write_all(&new_n.to_le_bytes())?;
    out.write_all(&r.to_le_bytes())?;
    let mut offsets = vec![u64::MAX; new_blocks];
    let mut file_pos = SEG_HEADER_BYTES;
    let mut body = Vec::new();
    let mut runs = Vec::new();
    // Re-encoded blocks land high-to-low, matching the backward writer's
    // file order (so the retained tail stays a tail).
    for j in (retained..new_blocks).rev() {
        let lo = j as u64 * r as u64;
        let hi = (lo + r as u64).min(new_n);
        encode_sta_block(&states[lo as usize..hi as usize], &mut runs, &mut body);
        offsets[j] = file_pos;
        out.write_all(&((hi - lo) as u32).to_le_bytes())?;
        out.write_all(&(body.len() as u32).to_le_bytes())?;
        out.write_all(&crc32(&body).to_le_bytes())?;
        out.write_all(&body)?;
        file_pos += (BLOCK_FRAME_BYTES + body.len()) as u64;
    }
    if retained > 0 {
        let start = old.offsets[retained - 1];
        let len = old.footer_offset - start;
        let shift = file_pos as i64 - start as i64;
        old.f.seek(SeekFrom::Start(start))?;
        let mut remaining = len;
        let mut buf = [0u8; 64 * 1024];
        while remaining > 0 {
            let take = remaining.min(buf.len() as u64) as usize;
            read_exact_ctx(&mut old.f, &mut buf[..take], "retained block bytes")?;
            out.write_all(&buf[..take])?;
            remaining -= take as u64;
        }
        for (j, slot) in offsets.iter_mut().enumerate().take(retained) {
            *slot = (old.offsets[j] as i64 + shift) as u64;
        }
        file_pos += len;
    }
    let footer_offset = file_pos;
    let mut footer = Vec::with_capacity(new_blocks * 8 + 4);
    for &off in &offsets {
        debug_assert_ne!(off, u64::MAX, "every block must be placed");
        footer.extend_from_slice(&off.to_le_bytes());
    }
    let crc = crc32(&footer);
    footer.extend_from_slice(&crc.to_le_bytes());
    out.write_all(&footer)?;
    out.write_all(&footer_offset.to_le_bytes())?;
    out.flush()?;
    drop(out);
    drop(old);
    std::fs::rename(&tmp, path)?;
    Ok(StaRewrite {
        retained_blocks: retained as u32,
        rewritten_blocks: (new_blocks - retained) as u32,
    })
}

/// In-memory variant used when the whole run fits in RAM (small trees,
/// tests): same interface, no file.
#[derive(Default)]
pub struct MemStates {
    states: Vec<u32>,
}

impl MemStates {
    /// Storage for `n` states.
    pub fn new(n: usize) -> Self {
        MemStates {
            states: vec![u32::MAX; n],
        }
    }

    /// Records the state of node `ix`.
    pub fn set(&mut self, ix: u32, state: u32) {
        self.states[ix as usize] = state;
    }

    /// The state of node `ix`.
    pub fn get(&self, ix: u32) -> u32 {
        self.states[ix as usize]
    }
}

/// Ensures a file handle's cursor sits at the start (paranoia helper for
/// reuse across scans).
pub fn rewind(f: &mut File) -> io::Result<()> {
    f.seek(std::io::SeekFrom::Start(0))?;
    Ok(())
}

/// Writes raw bytes at a path (test helper).
pub fn write_all(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [StaFormat; 2] = [StaFormat::Blocked, StaFormat::Flat];

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arb-sta-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn backward_write_forward_read() {
        for format in BOTH {
            let path = tmp_dir("rt").join(format!("x-{format}.sta"));
            let n = 1000u32;
            let mut w = StateFileWriter::create(&path, n as u64, format).unwrap();
            // Phase-1 order: node n-1 first.
            for ix in (0..n).rev() {
                w.write_state(ix * 3).unwrap();
            }
            let encoded = w.finish().unwrap();
            assert!(encoded > 0);
            let mut r = StateFileReader::open(&path, format).unwrap();
            for ix in 0..n {
                assert_eq!(r.read_state().unwrap(), ix * 3, "{format}");
            }
            assert_eq!(r.decoded_bytes(), n as u64 * 4);
            // Reading past the end is an InvalidData error, not EOF.
            let err = r.read_state().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{format}");
        }
    }

    #[test]
    fn repetitive_streams_encode_below_four_bytes_per_node() {
        let path = tmp_dir("rle").join("rle.sta");
        let n = 10_000u64;
        let mut w = StateFileWriter::create(&path, n, StaFormat::Blocked).unwrap();
        for ix in (0..n).rev() {
            // Long default runs with occasional literals.
            w.write_state(if ix % 97 == 0 { (ix % 7) as u32 } else { 42 })
                .unwrap();
        }
        let encoded = w.finish().unwrap();
        assert!(
            encoded < n * STATE_BYTES as u64 / 4,
            "RLE + skip-default should crush a repetitive stream, got {encoded} bytes"
        );
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for ix in 0..n {
            let want = if ix % 97 == 0 { (ix % 7) as u32 } else { 42 };
            assert_eq!(r.read_state().unwrap(), want);
        }
    }

    #[test]
    fn rewrite_retains_clean_blocks_and_roundtrips() {
        let path = tmp_dir("rw").join("rw.sta");
        let n = 100_000u64; // ~4 blocks at the default 32 Ki records
        let state_of = |ix: u64| -> u32 { (ix % 911) as u32 };
        let mut w = StateFileWriter::create(&path, n, StaFormat::Blocked).unwrap();
        for ix in (0..n).rev() {
            w.write_state(state_of(ix)).unwrap();
        }
        w.finish().unwrap();

        // Same length, dirty tail only: two full blocks retainable.
        let dirty_from = 80_000u64;
        let mut states: Vec<u32> = (0..n).map(state_of).collect();
        for s in &mut states[dirty_from as usize..] {
            *s = s.wrapping_mul(7) ^ 13;
        }
        let report = rewrite_blocked(&path, &states, dirty_from).unwrap();
        assert_eq!(report.retained_blocks, 2);
        assert_eq!(report.rewritten_blocks, 2);
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for &want in &states {
            assert_eq!(r.read_state().unwrap(), want);
        }

        // Growing rewrite: a splice inserted nodes after `dirty_from`.
        let grown: Vec<u32> = states
            .iter()
            .copied()
            .chain((0..5_000).map(|i| i as u32 * 3 + 1))
            .collect();
        let report = rewrite_blocked(&path, &grown, dirty_from).unwrap();
        assert_eq!(report.retained_blocks, 2);
        assert_eq!(report.rewritten_blocks, 2);
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for &want in &grown {
            assert_eq!(r.read_state().unwrap(), want);
        }

        // Shrinking rewrite with a fully-clean prefix still caps retention
        // at the new block count.
        let shrunk: Vec<u32> = grown[..40_000].to_vec();
        let report = rewrite_blocked(&path, &shrunk, 40_000).unwrap();
        assert_eq!(report.retained_blocks, 1);
        assert_eq!(report.rewritten_blocks, 1);
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for &want in &shrunk {
            assert_eq!(r.read_state().unwrap(), want);
        }

        // dirty_from past the array is rejected.
        assert!(rewrite_blocked(&path, &shrunk, 40_001).is_err());
    }

    #[test]
    fn codec_roundtrips_hostile_blocks() {
        let mut runs = Vec::new();
        let mut body = Vec::new();
        let mut out = Vec::new();
        let cases: Vec<Vec<u32>> = vec![
            vec![7],
            vec![0; 5],
            vec![u32::MAX, 0, u32::MAX, u32::MAX, 1, 1, 1],
            (0..1000u32).collect(),
            (0..1000u32).map(|i| i / 100).collect(),
            vec![5, 5, 9, 9, 9, 5, 5, 5, 2],
        ];
        for states in cases {
            encode_sta_block(&states, &mut runs, &mut body);
            decode_sta_block(&body, states.len() as u32, &mut out).unwrap();
            assert_eq!(out, states);
        }
        // Reserved tag 3 is rejected.
        let mut bad = Vec::new();
        push_varint64(&mut bad, 0); // default
        push_varint64(&mut bad, 3); // tag 3
        assert!(decode_sta_block(&bad, 1, &mut out).is_err());
        // A run overrunning its block is rejected.
        let mut bad = Vec::new();
        push_varint64(&mut bad, 0);
        push_varint64(&mut bad, (9 << 2) | 1);
        assert!(decode_sta_block(&bad, 2, &mut out).is_err());
    }

    #[test]
    fn finish_detects_missing_states() {
        for format in BOTH {
            let path = tmp_dir("miss").join(format!("y-{format}.sta"));
            let mut w = StateFileWriter::create(&path, 3, format).unwrap();
            w.write_state(1).unwrap();
            assert!(w.finish().is_err(), "{format}");
        }
    }

    #[test]
    fn mem_states() {
        let mut m = MemStates::new(4);
        m.set(2, 99);
        assert_eq!(m.get(2), 99);
    }

    #[test]
    fn segments_and_patches_compose_into_one_state_stream() {
        for format in BOTH {
            let dir = tmp_dir("seg");
            let path = dir.join(format!("seg-{format}.sta"));
            let n = 100u64;
            allocate(&path, n, format).unwrap();

            // Two "workers" fill [10, 40) and [40, 100) backwards; the
            // "spine" nodes [0, 10) are patched individually.
            for (lo, hi) in [(10u64, 40u64), (40, 100)] {
                let mut w = StateFileWriter::segment(&path, lo, hi, format).unwrap();
                for ix in (lo..hi).rev() {
                    w.write_state(ix as u32 * 7).unwrap();
                }
                w.finish().unwrap();
            }
            let mut p = StateFilePatcher::open(&path, format).unwrap();
            for ix in 0..10u64 {
                p.write_state_at(ix, ix as u32 * 7).unwrap();
            }
            p.finish().unwrap();

            // A plain forward read sees one coherent stream.
            let mut r = StateFileReader::open(&path, format).unwrap();
            for ix in 0..n {
                assert_eq!(r.read_state().unwrap(), ix as u32 * 7, "{format}");
            }
            // A positioned read starts mid-stream (even mid-segment).
            for lo in [40u64, 57] {
                let mut r = StateFileReader::open_at(&path, lo, format).unwrap();
                assert_eq!(r.read_state().unwrap(), lo as u32 * 7, "{format}");
            }

            // A segment must fill exactly its window.
            let mut w = StateFileWriter::segment(&path, 0, 3, format).unwrap();
            w.write_state(1).unwrap();
            assert!(w.finish().is_err(), "{format}");
        }
    }

    /// Segment boundaries that do not land on block boundaries: with
    /// tiny blocks the segment windows straddle many frames.
    #[test]
    fn segments_straddle_block_frames() {
        let dir = tmp_dir("straddle");
        let path = dir.join("straddle.sta");
        let n = 500u64;
        std::env::set_var("ARB_STA_BLOCK_RECORDS", "16");
        allocate(&path, n, StaFormat::Blocked).unwrap();
        for (lo, hi) in [(3u64, 130u64), (130, 257), (257, 500)] {
            let mut w = StateFileWriter::segment(&path, lo, hi, StaFormat::Blocked).unwrap();
            for ix in (lo..hi).rev() {
                w.write_state((ix % 5) as u32).unwrap();
            }
            w.finish().unwrap();
        }
        let mut p = StateFilePatcher::open(&path, StaFormat::Blocked).unwrap();
        for ix in 0..3u64 {
            p.write_state_at(ix, (ix % 5) as u32).unwrap();
        }
        p.finish().unwrap();
        std::env::remove_var("ARB_STA_BLOCK_RECORDS");
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for ix in 0..n {
            assert_eq!(r.read_state().unwrap(), (ix % 5) as u32, "node {ix}");
        }
    }

    #[test]
    fn truncation_is_invalid_data_with_context() {
        for format in BOTH {
            let path = tmp_dir("trunc").join(format!("t-{format}.sta"));
            let n = 64u64;
            let mut w = StateFileWriter::create(&path, n, format).unwrap();
            for ix in (0..n).rev() {
                w.write_state(ix as u32).unwrap();
            }
            w.finish().unwrap();
            // Chop the tail off the file.
            let len = std::fs::metadata(&path).unwrap().len();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len / 2).unwrap();
            let res = StateFileReader::open(&path, format).and_then(|mut r| {
                for _ in 0..n {
                    r.read_state()?;
                }
                Ok(())
            });
            let err = res.expect_err("truncated stream must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{format}: {err}");
            assert!(
                err.to_string().contains("truncated") || err.to_string().contains("state"),
                "{format}: error must carry context, got {err}"
            );
        }
        // A missing segment of a sharded blocked stream is also caught.
        let dir = tmp_dir("trunc2");
        let path = dir.join("gap.sta");
        allocate(&path, 20, StaFormat::Blocked).unwrap();
        let mut w = StateFileWriter::segment(&path, 0, 10, StaFormat::Blocked).unwrap();
        for ix in (0..10u64).rev() {
            w.write_state(ix as u32).unwrap();
        }
        w.finish().unwrap();
        let mut r = StateFileReader::open(&path, StaFormat::Blocked).unwrap();
        for _ in 0..10 {
            r.read_state().unwrap();
        }
        let err = r.read_state().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("node 10"), "{err}");
    }

    #[test]
    fn blocked_corruption_is_rejected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("c.sta");
        let n = 64u64;
        let mut w = StateFileWriter::create(&path, n, StaFormat::Blocked).unwrap();
        for ix in (0..n).rev() {
            w.write_state(ix as u32 * 3).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte inside the first block body.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = SEG_HEADER_BYTES as usize + BLOCK_FRAME_BYTES + 2;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let res = StateFileReader::open(&path, StaFormat::Blocked)
            .and_then(|mut r| r.read_state().map(|_| ()));
        let err = res.expect_err("bit flip must be caught");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn scratch_path_deletes_side_files_on_drop() {
        let dir = tmp_dir("drop");
        let path = dir.join("scratch.sta");
        let guard = ScratchPath::new(path.clone());
        allocate(guard.path(), 80, StaFormat::Blocked).unwrap();
        let mut w = StateFileWriter::segment(guard.path(), 8, 80, StaFormat::Blocked).unwrap();
        for ix in (8..80u64).rev() {
            w.write_state(ix as u32).unwrap();
        }
        w.finish().unwrap();
        let mut p = StateFilePatcher::open(guard.path(), StaFormat::Blocked).unwrap();
        p.write_state_at(0, 1).unwrap();
        p.finish().unwrap();
        let seg = seg_path(&path, 8);
        let patch = patch_path(&path);
        assert!(path.exists() && seg.exists() && patch.exists());
        drop(guard);
        assert!(!path.exists(), "manifest must vanish with its guard");
        assert!(!seg.exists(), "segment side files must vanish too");
        assert!(!patch.exists(), "the patch side file must vanish too");
        // Dropping a guard whose files were never created is fine.
        drop(ScratchPath::new(dir.join("never-created.sta")));
    }

    #[test]
    fn sweep_removes_only_dead_owners_scratch() {
        let dir = tmp_dir("sweep");
        let db_path = dir.join("x.arb");
        std::fs::write(&db_path, [0, 0]).unwrap();
        // A pid far above any kernel's pid_max: provably not running.
        let dead = 4_000_000_000u32;
        let me = std::process::id();
        let stale = [
            dir.join(format!("x.p{dead}-0.sta")),
            dir.join(format!("x.p{dead}-0.sta.seg-5")),
            dir.join(format!("x.p{dead}-1.sta.patch")),
        ];
        let kept = [
            dir.join(format!("x.p{me}-0.sta")),     // our own live run
            dir.join("x.pabc-0.sta"),               // malformed pid
            dir.join(format!("x.p{dead}-0.stale")), // not a .sta stream
            dir.join(format!("y.p{dead}-0.sta")),   // different database
        ];
        for p in stale.iter().chain(&kept) {
            std::fs::write(p, b"junk").unwrap();
        }
        let mut swept = sweep_stale_scratch(&db_path).unwrap();
        swept.sort();
        let mut expected: Vec<_> = stale.to_vec();
        expected.sort();
        if cfg!(target_os = "linux") {
            assert_eq!(swept, expected);
            for p in &stale {
                assert!(!p.exists(), "{} must be swept", p.display());
            }
        } else {
            // Liveness cannot be checked: nothing may be deleted.
            assert!(swept.is_empty());
        }
        for p in &kept {
            assert!(p.exists(), "{} must survive the sweep", p.display());
        }
    }

    #[test]
    fn scratch_owner_pid_parsing() {
        assert_eq!(scratch_owner_pid("x.p123-0.sta", "x.p"), Some(123));
        assert_eq!(scratch_owner_pid("x.p123-17.sta.seg-40", "x.p"), Some(123));
        assert_eq!(scratch_owner_pid("x.p123-2.sta.patch", "x.p"), Some(123));
        assert_eq!(scratch_owner_pid("x.p123-0.sta", "y.p"), None);
        assert_eq!(scratch_owner_pid("x.pabc-0.sta", "x.p"), None);
        assert_eq!(scratch_owner_pid("x.p123-x.sta", "x.p"), None);
        assert_eq!(scratch_owner_pid("x.p123-0.stale", "x.p"), None);
        assert_eq!(scratch_owner_pid("x.p123.sta", "x.p"), None);
    }

    #[test]
    fn format_parsing() {
        assert_eq!(StaFormat::parse("flat"), Some(StaFormat::Flat));
        assert_eq!(StaFormat::parse("FLAT"), Some(StaFormat::Flat));
        assert_eq!(StaFormat::parse("blocked"), Some(StaFormat::Blocked));
        assert_eq!(StaFormat::parse("bogus"), None);
        assert_eq!(StaFormat::default(), StaFormat::Blocked);
        assert_eq!(StaFormat::Blocked.to_string(), "blocked");
        assert_eq!(StaFormat::Flat.to_string(), "flat");
    }
}
