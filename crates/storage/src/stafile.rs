//! The temporary `.sta` state file connecting the two phases.
//!
//! "Since the run of A may be very large and B needs to process it, we
//! write it to the disk. In our implementation, we write the pointer to
//! the internal data structure of the residual program ρA(v) for each
//! node v, in the order we visit the nodes. Our temporary file thus
//! consumes four bytes per node." (paper footnote 12)
//!
//! Phase 1 visits nodes backwards, so state ids are written through a
//! [`RevWriter`] and land at offset `4·ix` for preorder index `ix`;
//! phase 2 then reads the file forward, aligned with its forward `.arb`
//! scan.

use crate::rev::RevWriter;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, Write};
use std::path::Path;

/// Bytes per state entry.
pub const STATE_BYTES: usize = 4;

/// Writes state ids during the backward phase-1 scan.
pub struct StateFileWriter {
    inner: RevWriter<File>,
}

impl StateFileWriter {
    /// Creates a state file for `n` nodes.
    pub fn create(path: &Path, n: u64) -> io::Result<Self> {
        let f = File::create(path)?;
        f.set_len(n * STATE_BYTES as u64)?;
        Ok(StateFileWriter {
            inner: RevWriter::new(f, n * STATE_BYTES as u64),
        })
    }

    /// Writes the state of the next node (phase 1 visits `n−1 .. 0`).
    pub fn write_state(&mut self, state: u32) -> io::Result<()> {
        self.inner.write_record(&state.to_le_bytes())
    }

    /// Finishes; errors if fewer or more than `n` states were written.
    pub fn finish(self) -> io::Result<()> {
        self.inner.finish()?;
        Ok(())
    }
}

/// Reads state ids in preorder during the forward phase-2 scan.
pub struct StateFileReader {
    inner: BufReader<File>,
}

impl StateFileReader {
    /// Opens a state file.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(StateFileReader {
            inner: BufReader::with_capacity(64 * 1024, File::open(path)?),
        })
    }

    /// Reads the next state id.
    pub fn read_state(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; STATE_BYTES];
        self.inner.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
}

/// In-memory variant used when the whole run fits in RAM (small trees,
/// tests): same interface, no file.
#[derive(Default)]
pub struct MemStates {
    states: Vec<u32>,
}

impl MemStates {
    /// Storage for `n` states.
    pub fn new(n: usize) -> Self {
        MemStates {
            states: vec![u32::MAX; n],
        }
    }

    /// Records the state of node `ix`.
    pub fn set(&mut self, ix: u32, state: u32) {
        self.states[ix as usize] = state;
    }

    /// The state of node `ix`.
    pub fn get(&self, ix: u32) -> u32 {
        self.states[ix as usize]
    }
}

/// Ensures a file handle's cursor sits at the start (paranoia helper for
/// reuse across scans).
pub fn rewind(f: &mut File) -> io::Result<()> {
    f.seek(std::io::SeekFrom::Start(0))?;
    Ok(())
}

/// Writes raw bytes at a path (test helper).
pub fn write_all(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_write_forward_read() {
        let dir = std::env::temp_dir().join(format!("arb-sta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.sta");
        let n = 1000u32;
        let mut w = StateFileWriter::create(&path, n as u64).unwrap();
        // Phase-1 order: node n-1 first.
        for ix in (0..n).rev() {
            w.write_state(ix * 3).unwrap();
        }
        w.finish().unwrap();
        let mut r = StateFileReader::open(&path).unwrap();
        for ix in 0..n {
            assert_eq!(r.read_state().unwrap(), ix * 3);
        }
    }

    #[test]
    fn finish_detects_missing_states() {
        let dir = std::env::temp_dir().join(format!("arb-sta2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("y.sta");
        let mut w = StateFileWriter::create(&path, 3).unwrap();
        w.write_state(1).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn mem_states() {
        let mut m = MemStates::new(4);
        m.set(2, 99);
        assert_eq!(m.get(2), 99);
    }
}
