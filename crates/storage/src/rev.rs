//! Backward (right-to-left) file I/O.
//!
//! Database creation writes the `.arb` file "backwards, beginning at an
//! offset of k·n bytes" (paper Section 5), and the bottom-up traversal
//! reads it backwards in one linear scan. Both are implemented here with
//! chunked buffering so the disk still sees large sequential(ish)
//! transfers.

use std::io::{self, Read, Seek, SeekFrom, Write};

const CHUNK: usize = 64 * 1024;

/// Writes fixed-size records back-to-front: the first record written
/// lands at the end of the window, the last at its start.
pub struct RevWriter<W: Write + Seek> {
    inner: W,
    /// Next byte position to write *before*.
    pos: u64,
    /// First byte of the window — writing stops (exactly) here.
    lo: u64,
    buf: Vec<u8>,
}

impl<W: Write + Seek> RevWriter<W> {
    /// A writer that will fill exactly `total_bytes`, writing backwards.
    pub fn new(inner: W, total_bytes: u64) -> Self {
        Self::for_range(inner, 0, total_bytes)
    }

    /// A writer that will fill exactly the byte window `[lo, hi)` of an
    /// existing file, writing backwards from `hi` — the seam sharded
    /// evaluation uses to let workers fill disjoint slices of one shared
    /// scratch file.
    pub fn for_range(inner: W, lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi);
        RevWriter {
            inner,
            pos: hi,
            lo,
            buf: Vec::with_capacity(CHUNK),
        }
    }

    /// Writes one record (its bytes in normal order) at the position
    /// immediately *before* everything written so far.
    pub fn write_record(&mut self, bytes: &[u8]) -> io::Result<()> {
        // Records accumulate reversed in the buffer; flush rewrites order.
        if self.buf.len() + bytes.len() > CHUNK {
            self.flush_buf()?;
        }
        // Push in reverse so the buffer is a reversed byte stream.
        for &b in bytes.iter().rev() {
            self.buf.push(b);
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let len = self.buf.len() as u64;
        if len > self.pos - self.lo {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "RevWriter overflow: more records than the window holds",
            ));
        }
        self.pos -= len;
        self.buf.reverse();
        self.inner.seek(SeekFrom::Start(self.pos))?;
        self.inner.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes and returns the inner writer. Errors if the file was not
    /// filled exactly (record count mismatch).
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_buf()?;
        if self.pos != self.lo {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "RevWriter underflow: {} bytes unwritten",
                    self.pos - self.lo
                ),
            ));
        }
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads fixed-size records back-to-front in one buffered linear pass.
pub struct RevReader<R: Read + Seek> {
    inner: R,
    /// Position of the first byte of the unread region.
    pos: u64,
    /// First byte of the window — reading stops here.
    lo: u64,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (from the end).
    consumed: usize,
    record_bytes: usize,
}

impl<R: Read + Seek> RevReader<R> {
    /// A reader over `total_bytes` of `record_bytes`-sized records.
    pub fn new(inner: R, total_bytes: u64, record_bytes: usize) -> io::Result<Self> {
        Self::for_range(inner, 0, total_bytes, record_bytes)
    }

    /// A reader over the byte window `[lo, hi)` of `record_bytes`-sized
    /// records, read backwards from `hi` — the input of per-worker range
    /// scans in sharded evaluation.
    pub fn for_range(inner: R, lo: u64, hi: u64, record_bytes: usize) -> io::Result<Self> {
        assert!(record_bytes > 0 && CHUNK.is_multiple_of(record_bytes));
        if lo > hi
            || !(hi - lo).is_multiple_of(record_bytes as u64)
            || !lo.is_multiple_of(record_bytes as u64)
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "window is not aligned to the record size",
            ));
        }
        Ok(RevReader {
            inner,
            pos: hi,
            lo,
            buf: Vec::new(),
            consumed: 0,
            record_bytes,
        })
    }

    /// Reads the previous record (bytes in normal order), or `None` at
    /// the beginning of the window.
    pub fn read_record(&mut self, out: &mut [u8]) -> io::Result<Option<()>> {
        debug_assert_eq!(out.len(), self.record_bytes);
        if self.consumed == self.buf.len() {
            if self.pos == self.lo {
                return Ok(None);
            }
            let take = CHUNK.min((self.pos - self.lo) as usize);
            self.pos -= take as u64;
            self.buf.resize(take, 0);
            self.inner.seek(SeekFrom::Start(self.pos))?;
            self.inner.read_exact(&mut self.buf)?;
            self.consumed = 0;
        }
        let end = self.buf.len() - self.consumed;
        let start = end - self.record_bytes;
        out.copy_from_slice(&self.buf[start..end]);
        self.consumed += self.record_bytes;
        Ok(Some(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn rev_writer_produces_forward_file() {
        let file = Cursor::new(vec![0u8; 12]);
        let mut w = RevWriter::new(file, 12);
        // Write records 5,4,...,0 backwards: file should read 0..=5.
        for i in (0..6u16).rev() {
            w.write_record(&i.to_le_bytes()).unwrap();
        }
        let out = w.finish().unwrap().into_inner();
        let vals: Vec<u16> = out
            .chunks(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rev_writer_detects_mismatch() {
        let file = Cursor::new(vec![0u8; 4]);
        let mut w = RevWriter::new(file, 4);
        w.write_record(&[1, 2]).unwrap();
        assert!(w.finish().is_err()); // 2 bytes unwritten

        let file = Cursor::new(vec![0u8; 2]);
        let mut w = RevWriter::new(file, 2);
        w.write_record(&[1, 2]).unwrap();
        w.write_record(&[3, 4]).unwrap();
        assert!(w.finish().is_err()); // overflow surfaces at flush
    }

    #[test]
    fn rev_reader_reads_backwards() {
        let data: Vec<u8> = (0..8u8).collect(); // records [0,1],[2,3],[4,5],[6,7]
        let mut r = RevReader::new(Cursor::new(data), 8, 2).unwrap();
        let mut rec = [0u8; 2];
        let mut seen = Vec::new();
        while r.read_record(&mut rec).unwrap().is_some() {
            seen.push(rec);
        }
        assert_eq!(seen, vec![[6, 7], [4, 5], [2, 3], [0, 1]]);
    }

    #[test]
    fn rev_reader_large_crosses_chunks() {
        let n = 100_000u32;
        let mut data = Vec::with_capacity(n as usize * 4);
        for i in 0..n {
            data.extend_from_slice(&i.to_le_bytes());
        }
        let mut r = RevReader::new(Cursor::new(data), n as u64 * 4, 4).unwrap();
        let mut rec = [0u8; 4];
        let mut expect = n;
        while r.read_record(&mut rec).unwrap().is_some() {
            expect -= 1;
            assert_eq!(u32::from_le_bytes(rec), expect);
        }
        assert_eq!(expect, 0);
    }

    #[test]
    fn rev_reader_rejects_ragged_file() {
        assert!(RevReader::new(Cursor::new(vec![0u8; 3]), 3, 2).is_err());
    }

    #[test]
    fn rev_reader_range_stops_at_window_start() {
        let data: Vec<u8> = (0..12u8).collect(); // six 2-byte records
                                                 // Window: records 2..=4, i.e. bytes [4, 10).
        let mut r = RevReader::for_range(Cursor::new(data), 4, 10, 2).unwrap();
        let mut rec = [0u8; 2];
        let mut seen = Vec::new();
        while r.read_record(&mut rec).unwrap().is_some() {
            seen.push(rec);
        }
        assert_eq!(seen, vec![[8, 9], [6, 7], [4, 5]]);
        assert!(RevReader::for_range(Cursor::new(vec![0u8; 8]), 1, 5, 2).is_err());
    }

    #[test]
    fn rev_writer_range_fills_only_its_window() {
        let file = Cursor::new(vec![0xFFu8; 12]);
        let mut w = RevWriter::for_range(file, 4, 10);
        for i in (2..5u16).rev() {
            w.write_record(&i.to_le_bytes()).unwrap();
        }
        let out = w.finish().unwrap().into_inner();
        let vals: Vec<u16> = out
            .chunks(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(vals, vec![0xFFFF, 0xFFFF, 2, 3, 4, 0xFFFF]);

        // Underflow and overflow are detected relative to the window.
        let mut w = RevWriter::for_range(Cursor::new(vec![0u8; 8]), 2, 6);
        w.write_record(&[1, 2]).unwrap();
        assert!(w.finish().is_err());
        let mut w = RevWriter::for_range(Cursor::new(vec![0u8; 8]), 2, 6);
        w.write_record(&[1, 2]).unwrap();
        w.write_record(&[3, 4]).unwrap();
        w.write_record(&[5, 6]).unwrap();
        assert!(w.finish().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// RevWriter then forward read reproduces the records; RevReader
        /// then reversal reproduces them too — for arbitrary record
        /// payloads and counts crossing chunk boundaries.
        #[test]
        fn backward_io_roundtrip(records in proptest::collection::vec(any::<u32>(), 0..5000)) {
            let total = records.len() as u64 * 4;
            let mut w = RevWriter::new(Cursor::new(vec![0u8; total as usize]), total);
            for r in records.iter().rev() {
                w.write_record(&r.to_le_bytes()).expect("write");
            }
            let bytes = w.finish().expect("finish").into_inner();
            // Forward decode.
            let forward: Vec<u32> = bytes
                .chunks(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
                .collect();
            prop_assert_eq!(&forward, &records);
            // Backward read.
            let mut r = RevReader::new(Cursor::new(bytes), total, 4).expect("reader");
            let mut buf = [0u8; 4];
            let mut back = Vec::new();
            while r.read_record(&mut buf).expect("read").is_some() {
                back.push(u32::from_le_bytes(buf));
            }
            back.reverse();
            prop_assert_eq!(back, records);
        }
    }
}
