//! `.arb` format **v2**: versioned, block-compressed, checksummed records.
//!
//! Format v1 (the paper's layout) is a bare array of 2-byte records — no
//! magic, no version, no checksum. A crash during its backward creation
//! pass leaves a full-size zero-prefixed file that opens silently and
//! returns wrong answers, and its per-record 2-byte reads bound phase-1
//! decode throughput. v2 keeps the logical record stream (and with it
//! Proposition 5.1's two-linear-scans property) but reframes the bytes:
//!
//! ```text
//! ┌──────────────────────── header (64 bytes) ─────────────────────────┐
//! │  0..8   magic  "ArbDBv2\0"                                         │
//! │  8..10  format version (u16 LE) = 2                                │
//! │ 10..12  label width in bits (u16 LE) = 14                          │
//! │ 12..16  node count n (u32 LE)                                      │
//! │ 16..20  tag count of the companion .lab file (u32 LE)              │
//! │ 20..24  block count (u32 LE) = ceil(n / records-per-block)         │
//! │ 24..28  records per block (u32 LE), last block short               │
//! │ 28..36  extent-section offset (u64 LE)                             │
//! │ 36..44  block-index offset (u64 LE)                                │
//! │ 44..48  append count (u32 LE) — in-place updates applied           │
//! │ 48..52  splice count (u32 LE)                                      │
//! │ 52..56  delete count (u32 LE)                                      │
//! │ 56      extent-section format (0 fixed, 1 compressed)              │
//! │ 57..60  reserved (zero)                                            │
//! │ 60..64  CRC32 of bytes 0..60                                       │
//! ├──────────────────────────── blocks ────────────────────────────────┤
//! │ per block: n_records (u32 LE) · body_len (u32 LE) · body CRC32 ·   │
//! │            body — one LEB128 varint per record encoding            │
//! │            (zigzag(label − prev_label) << 2) | (has_second << 1)   │
//! │            | has_first, with prev_label reset to 0 per block       │
//! ├─────────────────────── extent section ─────────────────────────────┤
//! │ compressed (format 1, written since PR 10): a directory of one     │
//! │ absolute u64 LE offset per 16384-node window plus a CRC32 of the   │
//! │ directory, then per window: body_len (u32 LE) · body CRC32 ·       │
//! │ body — the window's child-kind flags packed 2 bits per node        │
//! │ (bit 0 first child, bit 1 second), then one LEB128 varint per      │
//! │ node holding its binary-subtree size `end(v) − (v+1)` (0 for a     │
//! │ leaf). ~1.3 bytes per node instead of the fixed layout's 5.        │
//! │                                                                    │
//! │ fixed (format 0, files created before PR 10 — still readable):     │
//! │ per window: CRC32 of the body · body — 5 bytes per node: subtree   │
//! │ end (u32 LE) then child-kind flags. Only the last window is        │
//! │ short, so window offsets are computable without a directory.       │
//! ├──────────────────────── block index ───────────────────────────────┤
//! │ block_count file offsets (u64 LE each) · CRC32 of those bytes.     │
//! │ Block b holds records [b·R, min((b+1)·R, n)), so range scans seek  │
//! │ straight to `offsets[lo / R]`.                                     │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Crash safety: creation writes a **placeholder** header first — the
//! real magic with an invalid version field — and patches the real
//! header only after every block, the extent section and the index are
//! on disk. A crashed creation therefore still sniffs as v2 and is
//! rejected at open; it can never fall back to a silent v1
//! interpretation.
//!
//! In-place updates ([`crate::update::ArbUpdater`]) follow the same
//! discipline: the header is invalidated (placeholder version) before
//! the first dirty block is rewritten and re-stamped — with one of the
//! three update counters bumped — only after the new blocks, extent
//! section and index are on disk. The counters' sum is the file's
//! **epoch**: readers compare it against the epoch they mounted and
//! invalidate their block/extent caches when it moves. Files written
//! before updates existed carry zero counters (epoch 0) and open
//! unchanged — the counter bytes were reserved-zero and were already
//! covered by the header CRC.

use crate::format::NodeRecord;
use arb_tree::LabelId;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::Arc;

/// v2 file magic (first 8 bytes).
pub const MAGIC: [u8; 8] = *b"ArbDBv2\0";
/// Current format version stored in the header.
pub const VERSION: u16 = 2;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 64;
/// Label width recorded in the header (the paper's 14-bit labels).
pub const LABEL_BITS: u16 = 14;
/// Records per block (64 KiB of v1-equivalent payload per block).
pub const BLOCK_RECORDS: u32 = 32 * 1024;
/// Nodes per extent-section window.
pub const EXTENT_WINDOW: u32 = 16 * 1024;
/// Bytes per node in the extent section (u32 end + u8 kind flags).
pub const EXTENT_ENTRY_BYTES: u64 = 5;
/// Per-block frame: record count, body length, body CRC32.
const BLOCK_FRAME_BYTES: usize = 12;
/// Upper bound on a block body — anything larger is corruption, not data
/// (the worst-case varint stream for a full block is 3 bytes/record).
const MAX_BLOCK_BODY: u32 = 4 * BLOCK_RECORDS;
/// 14-bit label mask, mirrored from the record format.
const LABEL_MASK: u16 = (1 << 14) - 1;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), hand-rolled —
/// the workspace is fully offline, so no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[inline]
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

#[inline]
fn unzigzag(u: u32) -> i32 {
    ((u >> 1) as i32) ^ -((u & 1) as i32)
}

#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn read_varint(body: &[u8], pos: &mut usize) -> io::Result<u32> {
    let mut v = 0u32;
    for shift in [0u32, 7, 14, 21, 28] {
        let b = *body
            .get(*pos)
            .ok_or_else(|| invalid("block body truncated inside a varint"))?;
        *pos += 1;
        v |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(invalid("varint longer than 5 bytes in block body"))
}

/// Encodes a run of records as one block body (delta/varint stream).
pub fn encode_block(records: &[NodeRecord], out: &mut Vec<u8>) {
    out.clear();
    let mut prev = 0i32;
    for r in records {
        let delta = r.label.0 as i32 - prev;
        prev = r.label.0 as i32;
        let v = (zigzag(delta) << 2) | ((r.has_second as u32) << 1) | r.has_first as u32;
        push_varint(out, v);
    }
}

/// Decodes one block body into `out` (cleared first). Every decoded
/// label is range-checked; record-count and length mismatches are
/// `InvalidData`.
pub fn decode_block(body: &[u8], n_records: u32, out: &mut Vec<NodeRecord>) -> io::Result<()> {
    out.clear();
    out.reserve(n_records as usize);
    let mut prev = 0i32;
    let mut pos = 0usize;
    for _ in 0..n_records {
        let v = read_varint(body, &mut pos)?;
        let label = prev + unzigzag(v >> 2);
        if !(0..=LABEL_MASK as i32).contains(&label) {
            return Err(invalid("decoded label outside the 14-bit label space"));
        }
        prev = label;
        out.push(NodeRecord {
            label: LabelId(label as u16),
            has_first: v & 1 != 0,
            has_second: v & 2 != 0,
        });
    }
    if pos != body.len() {
        return Err(invalid("block body longer than its record count"));
    }
    Ok(())
}

/// How the extent section is laid out on disk (header byte 56).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtentFormat {
    /// 5 bytes per node, computable window offsets (files from before
    /// the compressed layout existed).
    Fixed,
    /// Packed kind bits + varint subtree sizes behind a window-offset
    /// directory (the layout written since updates landed).
    Compressed,
}

/// The parsed, validated v2 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Total node (record) count.
    pub node_count: u32,
    /// Tag count the companion `.lab` file must resolve.
    pub tag_count: u32,
    /// Number of record blocks.
    pub block_count: u32,
    /// Records per block (last block short).
    pub block_records: u32,
    /// File offset of the extent section.
    pub extent_offset: u64,
    /// File offset of the block index.
    pub index_offset: u64,
    /// Lifetime `append_subtree` updates applied to this file.
    pub appends: u32,
    /// Lifetime `splice_subtree` updates applied to this file.
    pub splices: u32,
    /// Lifetime `delete_subtree` updates applied to this file.
    pub deletes: u32,
    /// Extent-section layout.
    pub extent_format: ExtentFormat,
}

impl Header {
    /// The file's update epoch: total updates ever applied. Caches keyed
    /// on the epoch (block LRU, subtree extents) are invalid once it
    /// moves. Write-once files are at epoch 0 forever.
    pub fn epoch(self) -> u64 {
        self.appends as u64 + self.splices as u64 + self.deletes as u64
    }

    /// Serializes with a valid CRC.
    pub fn to_bytes(self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..8].copy_from_slice(&MAGIC);
        b[8..10].copy_from_slice(&VERSION.to_le_bytes());
        b[10..12].copy_from_slice(&LABEL_BITS.to_le_bytes());
        b[12..16].copy_from_slice(&self.node_count.to_le_bytes());
        b[16..20].copy_from_slice(&self.tag_count.to_le_bytes());
        b[20..24].copy_from_slice(&self.block_count.to_le_bytes());
        b[24..28].copy_from_slice(&self.block_records.to_le_bytes());
        b[28..36].copy_from_slice(&self.extent_offset.to_le_bytes());
        b[36..44].copy_from_slice(&self.index_offset.to_le_bytes());
        b[44..48].copy_from_slice(&self.appends.to_le_bytes());
        b[48..52].copy_from_slice(&self.splices.to_le_bytes());
        b[52..56].copy_from_slice(&self.deletes.to_le_bytes());
        b[56] = match self.extent_format {
            ExtentFormat::Fixed => 0,
            ExtentFormat::Compressed => 1,
        };
        let crc = crc32(&b[..60]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses and validates the fixed header fields.
    pub fn parse(b: &[u8; HEADER_BYTES]) -> io::Result<Self> {
        if b[0..8] != MAGIC {
            return Err(invalid("not a v2 .arb file (bad magic)"));
        }
        let crc = u32::from_le_bytes(b[60..64].try_into().expect("4 bytes"));
        if crc32(&b[..60]) != crc {
            return Err(invalid(
                "v2 header checksum mismatch (crashed creation or corruption)",
            ));
        }
        let le16 = |o: usize| u16::from_le_bytes(b[o..o + 2].try_into().expect("2 bytes"));
        let le32 = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        let le64 = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        if le16(8) != VERSION {
            return Err(invalid(format!(
                "unsupported .arb format version {} (crashed creation leaves 65535)",
                le16(8)
            )));
        }
        if le16(10) != LABEL_BITS {
            return Err(invalid(format!(
                "unsupported label width {} bits",
                le16(10)
            )));
        }
        let extent_format = match b[56] {
            0 => ExtentFormat::Fixed,
            1 => ExtentFormat::Compressed,
            f => return Err(invalid(format!("unknown extent-section format {f}"))),
        };
        let h = Header {
            node_count: le32(12),
            tag_count: le32(16),
            block_count: le32(20),
            block_records: le32(24),
            extent_offset: le64(28),
            index_offset: le64(36),
            appends: le32(44),
            splices: le32(48),
            deletes: le32(52),
            extent_format,
        };
        if h.block_records == 0 {
            return Err(invalid("v2 header: zero records per block"));
        }
        let expect_blocks = (h.node_count as u64).div_ceil(h.block_records as u64);
        if h.block_count as u64 != expect_blocks {
            return Err(invalid(
                "v2 header: block count inconsistent with node count",
            ));
        }
        Ok(h)
    }
}

/// Block layout shared between the database handle and its scans: where
/// each block lives and how records map onto blocks.
#[derive(Debug)]
pub struct BlockMap {
    /// Total record count.
    pub node_count: u32,
    /// Records per block (last block short).
    pub block_records: u32,
    /// File offset of each block's frame.
    pub offsets: Vec<u64>,
}

impl BlockMap {
    /// Number of records in block `b`.
    pub fn records_in(&self, b: u32) -> u32 {
        let lo = b as u64 * self.block_records as u64;
        (self.node_count as u64 - lo).min(self.block_records as u64) as u32
    }

    /// The block holding record `ix`.
    #[inline]
    pub fn block_of(&self, ix: u32) -> u32 {
        ix / self.block_records
    }
}

/// Everything `ArbDatabase::open` learns from a v2 file.
pub struct V2Meta {
    /// The validated header.
    pub header: Header,
    /// Block layout (offsets verified against the index checksum).
    pub map: Arc<BlockMap>,
    /// Total file length.
    pub file_len: u64,
}

/// Number of extent windows for `n` nodes.
pub fn extent_windows(n: u32) -> u32 {
    (n as u64).div_ceil(EXTENT_WINDOW as u64) as u32
}

/// On-disk size of the **fixed-layout** extent section for `n` nodes
/// (the compressed layout's size depends on the data).
fn fixed_extent_section_bytes(n: u32) -> u64 {
    extent_windows(n) as u64 * 4 + n as u64 * EXTENT_ENTRY_BYTES
}

/// File offset of fixed-layout extent window `w` (all windows but the
/// last are full, so offsets are computable without a directory).
fn fixed_extent_window_offset(extent_offset: u64, w: u32) -> u64 {
    extent_offset + w as u64 * (4 + EXTENT_WINDOW as u64 * EXTENT_ENTRY_BYTES)
}

/// Bytes of the compressed extent section's window directory.
fn extent_dir_bytes(n: u32) -> u64 {
    extent_windows(n) as u64 * 8 + 4
}

/// Upper bound on a compressed extent window body: packed kinds plus a
/// worst-case 5-byte varint per node. Larger claims are corruption.
const MAX_EXTENT_BODY: u32 = EXTENT_WINDOW / 4 + 5 * EXTENT_WINDOW;

/// Encodes one compressed extent window body: the packed 2-bit kind
/// flags for nodes `[lo, lo + len)`, then each node's binary-subtree
/// size `ends[i] − (global + 1)` as a varint. `ends`/`kinds` are indexed
/// window-locally; `lo` is the window's first global node index.
pub fn encode_extent_window(ends: &[u32], kinds: &[u8], lo: u32, out: &mut Vec<u8>) {
    out.clear();
    out.resize(ends.len().div_ceil(4), 0);
    for (i, &k) in kinds.iter().enumerate() {
        out[i / 4] |= (k & 3) << ((i % 4) * 2);
    }
    for (i, &e) in ends.iter().enumerate() {
        let v = lo + i as u32;
        push_varint(out, e - (v + 1));
    }
}

/// Decodes one compressed extent window body (inverse of
/// [`encode_extent_window`]).
pub fn decode_extent_window(body: &[u8], lo: u32, len: usize) -> io::Result<(Vec<u32>, Vec<u8>)> {
    let kind_bytes = len.div_ceil(4);
    if body.len() < kind_bytes {
        return Err(invalid("extent window body shorter than its kind flags"));
    }
    let mut kinds = Vec::with_capacity(len);
    for i in 0..len {
        kinds.push((body[i / 4] >> ((i % 4) * 2)) & 3);
    }
    let mut ends = Vec::with_capacity(len);
    let mut pos = kind_bytes;
    for i in 0..len {
        let v = lo + i as u32;
        let size = read_varint(body, &mut pos)?;
        let end = (v as u64 + 1).checked_add(size as u64);
        match end {
            Some(e) if e <= u32::MAX as u64 => ends.push(e as u32),
            _ => return Err(invalid("extent window: subtree size overflows")),
        }
    }
    if pos != body.len() {
        return Err(invalid("extent window body longer than its node count"));
    }
    Ok((ends, kinds))
}

/// Reads compressed extent window `w`'s absolute file offset from the
/// directory. The directory CRC is verified once at
/// [`read_meta`]; a flipped entry here lands on a frame whose own
/// length bound and body CRC reject it.
fn extent_dir_entry<R: Read + Seek>(r: &mut R, extent_offset: u64, w: u32) -> io::Result<u64> {
    r.seek(SeekFrom::Start(extent_offset + w as u64 * 8))?;
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads and cross-validates the header and block index of a v2 file.
/// Every structural claim the header makes (section offsets, index size,
/// extent size, block offset monotonicity) is checked here, so a
/// truncated or bit-flipped file fails at open rather than mid-query.
pub fn read_meta<R: Read + Seek>(f: &mut R, file_len: u64) -> io::Result<V2Meta> {
    if file_len < HEADER_BYTES as u64 {
        return Err(invalid("v2 .arb file shorter than its header"));
    }
    f.seek(SeekFrom::Start(0))?;
    let mut hb = [0u8; HEADER_BYTES];
    f.read_exact(&mut hb)?;
    let header = Header::parse(&hb)?;
    let n = header.node_count;
    let bc = header.block_count as u64;
    let index_bytes = bc * 8 + 4;
    if header.index_offset + index_bytes != file_len {
        return Err(invalid("v2 .arb file truncated (index does not reach EOF)"));
    }
    if header.extent_offset < HEADER_BYTES as u64 {
        return Err(invalid("v2 header: sections overlap the header"));
    }
    match header.extent_format {
        ExtentFormat::Fixed => {
            if header
                .extent_offset
                .checked_add(fixed_extent_section_bytes(n))
                != Some(header.index_offset)
            {
                return Err(invalid(
                    "v2 header: extent section inconsistent with node count",
                ));
            }
        }
        ExtentFormat::Compressed => {
            // The directory must fit before the index; its entries must
            // be CRC-clean, increasing, and point into the window area.
            let dir_bytes = extent_dir_bytes(n);
            let windows_start = match header.extent_offset.checked_add(dir_bytes) {
                Some(s) if s <= header.index_offset => s,
                _ => return Err(invalid("v2 header: extent directory overruns the index")),
            };
            f.seek(SeekFrom::Start(header.extent_offset))?;
            let mut raw = vec![0u8; dir_bytes as usize];
            f.read_exact(&mut raw)?;
            let (dir, crc_bytes) = raw.split_at(raw.len() - 4);
            if crc32(dir) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
                return Err(invalid("v2 extent directory checksum mismatch"));
            }
            let mut prev = 0u64;
            for (w, c) in dir.chunks_exact(8).enumerate() {
                let off = u64::from_le_bytes(c.try_into().expect("8 bytes"));
                if w > 0 && off <= prev {
                    return Err(invalid("v2 extent directory: offsets not increasing"));
                }
                if off < windows_start || off >= header.index_offset {
                    return Err(invalid("v2 extent directory: offset outside the section"));
                }
                prev = off;
            }
        }
    }
    f.seek(SeekFrom::Start(header.index_offset))?;
    let mut raw = vec![0u8; index_bytes as usize];
    f.read_exact(&mut raw)?;
    let (body, crc_bytes) = raw.split_at(raw.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(invalid("v2 block index checksum mismatch"));
    }
    let mut offsets = Vec::with_capacity(header.block_count as usize);
    let mut prev = 0u64;
    for c in body.chunks_exact(8) {
        let off = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        if off <= prev && !offsets.is_empty() {
            return Err(invalid("v2 block index: offsets not increasing"));
        }
        if off < HEADER_BYTES as u64 || off >= header.extent_offset {
            return Err(invalid("v2 block index: offset outside the block area"));
        }
        prev = off;
        offsets.push(off);
    }
    if offsets.first().is_some_and(|&o| o != HEADER_BYTES as u64) {
        return Err(invalid("v2 block index: first block not after the header"));
    }
    Ok(V2Meta {
        header,
        map: Arc::new(BlockMap {
            node_count: n,
            block_records: header.block_records,
            offsets,
        }),
        file_len,
    })
}

/// Reads, checksum-verifies and decodes one block into `out`. `expected`
/// is the record count the block map says this block must hold.
pub fn read_block<R: Read + Seek>(
    r: &mut R,
    offset: u64,
    expected: u32,
    scratch: &mut Vec<u8>,
    out: &mut Vec<NodeRecord>,
) -> io::Result<()> {
    r.seek(SeekFrom::Start(offset))?;
    let mut frame = [0u8; BLOCK_FRAME_BYTES];
    r.read_exact(&mut frame)?;
    let n_records = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
    let body_len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes"));
    if n_records != expected {
        return Err(invalid("v2 block record count disagrees with the header"));
    }
    if body_len > MAX_BLOCK_BODY {
        return Err(invalid("v2 block body length implausibly large"));
    }
    scratch.resize(body_len as usize, 0);
    r.read_exact(scratch)?;
    if crc32(scratch) != crc {
        return Err(invalid("v2 block checksum mismatch"));
    }
    decode_block(scratch, n_records, out)
}

/// Reads and checksum-verifies one extent window: `(ends, kinds)` for
/// the node range `[w·W, min((w+1)·W, n))`, in either layout.
pub fn read_extent_window<R: Read + Seek>(
    r: &mut R,
    extent_offset: u64,
    node_count: u32,
    w: u32,
    format: ExtentFormat,
) -> io::Result<(Vec<u32>, Vec<u8>)> {
    let lo = w as u64 * EXTENT_WINDOW as u64;
    if lo >= node_count as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("extent window {w} outside the database"),
        ));
    }
    let len = (node_count as u64 - lo).min(EXTENT_WINDOW as u64) as usize;
    match format {
        ExtentFormat::Fixed => {
            r.seek(SeekFrom::Start(fixed_extent_window_offset(
                extent_offset,
                w,
            )))?;
            let mut crc_bytes = [0u8; 4];
            r.read_exact(&mut crc_bytes)?;
            let mut body = vec![0u8; len * EXTENT_ENTRY_BYTES as usize];
            r.read_exact(&mut body)?;
            if crc32(&body) != u32::from_le_bytes(crc_bytes) {
                return Err(invalid("v2 extent window checksum mismatch"));
            }
            let mut ends = Vec::with_capacity(len);
            let mut kinds = Vec::with_capacity(len);
            for e in body.chunks_exact(EXTENT_ENTRY_BYTES as usize) {
                ends.push(u32::from_le_bytes(e[0..4].try_into().expect("4 bytes")));
                kinds.push(e[4]);
            }
            Ok((ends, kinds))
        }
        ExtentFormat::Compressed => {
            let off = extent_dir_entry(r, extent_offset, w)?;
            r.seek(SeekFrom::Start(off))?;
            let mut frame = [0u8; 8];
            r.read_exact(&mut frame)?;
            let body_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
            if body_len > MAX_EXTENT_BODY {
                return Err(invalid("v2 extent window body implausibly large"));
            }
            let mut body = vec![0u8; body_len as usize];
            r.read_exact(&mut body)?;
            if crc32(&body) != crc {
                return Err(invalid("v2 extent window checksum mismatch"));
            }
            decode_extent_window(&body, lo as u32, len)
        }
    }
}

/// Serializes the compressed extent section (directory + window frames)
/// for `ends`/`kinds`, starting at absolute file offset `extent_offset`.
/// Returns the section bytes ready to write at that offset.
pub fn build_extent_section(ends: &[u32], kinds: &[u8], extent_offset: u64) -> Vec<u8> {
    let n = ends.len() as u32;
    let dir_bytes = extent_dir_bytes(n);
    let mut dir: Vec<u8> = Vec::with_capacity(dir_bytes as usize);
    let mut frames: Vec<u8> = Vec::new();
    let mut body = Vec::new();
    for w in 0..extent_windows(n) {
        let lo = w as usize * EXTENT_WINDOW as usize;
        let hi = (lo + EXTENT_WINDOW as usize).min(n as usize);
        encode_extent_window(&ends[lo..hi], &kinds[lo..hi], lo as u32, &mut body);
        dir.extend_from_slice(&(extent_offset + dir_bytes + frames.len() as u64).to_le_bytes());
        frames.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frames.extend_from_slice(&crc32(&body).to_le_bytes());
        frames.extend_from_slice(&body);
    }
    let crc = crc32(&dir);
    dir.extend_from_slice(&crc.to_le_bytes());
    dir.extend_from_slice(&frames);
    dir
}

/// Streaming v2 writer: header placeholder first, then blocks as records
/// arrive, then the extent section and block index, then the real header.
pub struct V2Writer<W: Write + Seek> {
    out: io::BufWriter<W>,
    pos: u64,
    node_count: u32,
    tag_count: u32,
    offsets: Vec<u64>,
    cur: Vec<NodeRecord>,
    body: Vec<u8>,
    written: u64,
}

impl<W: Write + Seek> V2Writer<W> {
    /// Starts a v2 file that will hold exactly `node_count` records.
    pub fn new(inner: W, node_count: u32, tag_count: u32) -> io::Result<Self> {
        let mut out = io::BufWriter::with_capacity(256 * 1024, inner);
        // Placeholder header: the real magic with an invalid version, so
        // a crash between here and `finish` is sniffed as v2 and
        // rejected — never misread as a v1 record array.
        let mut ph = [0u8; HEADER_BYTES];
        ph[0..8].copy_from_slice(&MAGIC);
        ph[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        out.write_all(&ph)?;
        Ok(V2Writer {
            out,
            pos: HEADER_BYTES as u64,
            node_count,
            tag_count,
            offsets: Vec::new(),
            cur: Vec::with_capacity(BLOCK_RECORDS as usize),
            body: Vec::new(),
            written: 0,
        })
    }

    /// Appends one record. Labels are range-checked here — an
    /// out-of-range `LabelId` is an error, never a silent truncation.
    pub fn push(&mut self, rec: NodeRecord) -> io::Result<()> {
        if rec.label.0 > LABEL_MASK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("label #{} outside the 14-bit label space", rec.label.0),
            ));
        }
        if self.written == self.node_count as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more records than the declared node count",
            ));
        }
        self.written += 1;
        self.cur.push(rec);
        if self.cur.len() == BLOCK_RECORDS as usize {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        encode_block(&self.cur, &mut self.body);
        self.offsets.push(self.pos);
        self.out.write_all(&(self.cur.len() as u32).to_le_bytes())?;
        self.out
            .write_all(&(self.body.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&self.body).to_le_bytes())?;
        self.out.write_all(&self.body)?;
        self.pos += (BLOCK_FRAME_BYTES + self.body.len()) as u64;
        self.cur.clear();
        Ok(())
    }

    /// Writes the extent section and block index, patches the real
    /// header and returns the final file length. `ends`/`kinds` are the
    /// per-node subtree extents and child flags (see
    /// [`crate::traversal::subtree_extents`]).
    pub fn finish(mut self, ends: &[u32], kinds: &[u8]) -> io::Result<u64> {
        if self.written != self.node_count as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record underflow: {} of {} records written",
                    self.written, self.node_count
                ),
            ));
        }
        if ends.len() != self.node_count as usize || kinds.len() != self.node_count as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "extent vectors do not match the node count",
            ));
        }
        self.flush_block()?;
        let extent_offset = self.pos;
        let section = build_extent_section(ends, kinds, extent_offset);
        self.out.write_all(&section)?;
        self.pos += section.len() as u64;
        let index_offset = self.pos;
        let mut index = Vec::with_capacity(self.offsets.len() * 8);
        for &o in &self.offsets {
            index.extend_from_slice(&o.to_le_bytes());
        }
        self.out.write_all(&index)?;
        self.out.write_all(&crc32(&index).to_le_bytes())?;
        self.pos += index.len() as u64 + 4;

        let header = Header {
            node_count: self.node_count,
            tag_count: self.tag_count,
            block_count: self.offsets.len() as u32,
            block_records: BLOCK_RECORDS,
            extent_offset,
            index_offset,
            appends: 0,
            splices: 0,
            deletes: 0,
            extent_format: ExtentFormat::Compressed,
        };
        self.out.flush()?;
        let mut inner = self
            .out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        inner.seek(SeekFrom::Start(0))?;
        inner.write_all(&header.to_bytes())?;
        inner.flush()?;
        Ok(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i32, 1, -1, 63, -64, 300, -300, 16383, -16383] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16384, u32::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn block_codec_roundtrip() {
        let records: Vec<NodeRecord> = (0..1000u16)
            .map(|i| NodeRecord {
                label: LabelId((i * 7) % (1 << 14)),
                has_first: i % 2 == 0,
                has_second: i % 3 == 0,
            })
            .collect();
        let mut body = Vec::new();
        encode_block(&records, &mut body);
        let mut out = Vec::new();
        decode_block(&body, records.len() as u32, &mut out).unwrap();
        assert_eq!(out, records);
        // A truncated body is detected.
        assert!(decode_block(&body[..body.len() - 1], records.len() as u32, &mut out).is_err());
        // A record-count mismatch is detected.
        assert!(decode_block(&body, records.len() as u32 - 1, &mut out).is_err());
    }

    #[test]
    fn header_roundtrip_and_corruption() {
        let h = Header {
            node_count: 100_000,
            tag_count: 7,
            block_count: 4,
            block_records: BLOCK_RECORDS,
            extent_offset: 1234,
            index_offset: 5678,
            appends: 3,
            splices: 1,
            deletes: 2,
            extent_format: ExtentFormat::Compressed,
        };
        let bytes = h.to_bytes();
        assert_eq!(Header::parse(&bytes).unwrap(), h);
        assert_eq!(h.epoch(), 6);
        let mut bad = bytes;
        bad[13] ^= 0x10; // flip a node-count bit
        assert!(Header::parse(&bad).is_err());
        let mut nomagic = bytes;
        nomagic[0] = b'X';
        assert!(Header::parse(&nomagic).is_err());
    }

    #[test]
    fn placeholder_header_is_rejected() {
        let mut ph = [0u8; HEADER_BYTES];
        ph[0..8].copy_from_slice(&MAGIC);
        ph[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        let err = Header::parse(&ph).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn writer_reader_roundtrip_with_meta() {
        let n = (BLOCK_RECORDS + 17) as usize; // two blocks, last short
        let records: Vec<NodeRecord> = (0..n)
            .map(|i| NodeRecord {
                label: LabelId((i % 500) as u16 + 256),
                has_first: i % 2 == 0,
                has_second: i % 5 == 0,
            })
            .collect();
        // Extents don't need to be structurally meaningful for the codec.
        let ends: Vec<u32> = (0..n as u32).map(|v| v + 1).collect();
        let kinds: Vec<u8> = vec![0; n];
        let dir = std::env::temp_dir().join(format!("arb-v2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.arbv2");
        let mut w = V2Writer::new(std::fs::File::create(&path).unwrap(), n as u32, 3).unwrap();
        for &r in &records {
            w.push(r).unwrap();
        }
        let file_len = w.finish(&ends, &kinds).unwrap();
        assert_eq!(file_len, std::fs::metadata(&path).unwrap().len());
        let mut f = std::fs::File::open(&path).unwrap();
        let meta = read_meta(&mut f, file_len).unwrap();
        assert_eq!(meta.header.node_count, n as u32);
        assert_eq!(meta.header.tag_count, 3);
        assert_eq!(meta.header.block_count, 2);
        assert_eq!(meta.map.records_in(0), BLOCK_RECORDS);
        assert_eq!(meta.map.records_in(1), 17);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let mut all = Vec::new();
        for (b, &off) in meta.map.offsets.iter().enumerate() {
            read_block(
                &mut f,
                off,
                meta.map.records_in(b as u32),
                &mut scratch,
                &mut out,
            )
            .unwrap();
            all.extend_from_slice(&out);
        }
        assert_eq!(all, records);
        // Extent windows read back verbatim.
        assert_eq!(meta.header.extent_format, ExtentFormat::Compressed);
        assert_eq!(meta.header.epoch(), 0, "freshly created files are epoch 0");
        let fmt = meta.header.extent_format;
        let (e0, k0) =
            read_extent_window(&mut f, meta.header.extent_offset, n as u32, 0, fmt).unwrap();
        assert_eq!(e0.len(), EXTENT_WINDOW as usize);
        assert_eq!(&e0[..], &ends[..EXTENT_WINDOW as usize]);
        assert_eq!(&k0[..], &kinds[..EXTENT_WINDOW as usize]);
        let last = extent_windows(n as u32) - 1;
        let (el, _) =
            read_extent_window(&mut f, meta.header.extent_offset, n as u32, last, fmt).unwrap();
        assert_eq!(el.len(), n - last as usize * EXTENT_WINDOW as usize);
    }

    #[test]
    fn writer_rejects_out_of_range_labels_and_count_mismatch() {
        let mut w = V2Writer::new(Cursor::new(Vec::new()), 1, 0).unwrap();
        let bad = NodeRecord {
            label: LabelId(1 << 14),
            has_first: false,
            has_second: false,
        };
        assert!(w.push(bad).is_err());
        let good = NodeRecord {
            label: LabelId(42),
            has_first: false,
            has_second: false,
        };
        w.push(good).unwrap();
        assert!(w.push(good).is_err(), "overflow past node count");

        let w = V2Writer::new(Cursor::new(Vec::new()), 2, 0).unwrap();
        assert!(w.finish(&[1, 2], &[0, 0]).is_err(), "underflow");
    }
}
