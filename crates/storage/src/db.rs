//! `ArbDatabase` — an opened `.arb`/`.lab` pair.
//!
//! [`ArbDatabase::open`] sniffs the on-disk format from the file itself:
//! a file starting with the v2 magic is parsed and structurally
//! validated as [`crate::v2`] (header + block index checksums verified
//! at open); anything else is served as the paper's bare v1 record
//! array. Every scan, range scan and point read works identically on
//! both formats.
//!
//! Since format v2 grew in-place updates ([`crate::update`]), an opened
//! handle is a *mount* of one epoch of the file: node count, block map
//! and extent cache are all epoch-scoped state behind a lock.
//! [`ArbDatabase::apply_update`] advances the epoch through this handle
//! (remounting and invalidating the point-read LRU and extent cache
//! atomically); [`ArbDatabase::revalidate`] catches epochs advanced by
//! *another* handle or process. Updates are serialized against this
//! handle's own bookkeeping, but not against in-flight scans — callers
//! that interleave scans with updates (the engine, the server) hold
//! their own reader/writer lock around whole evaluations.

use crate::create::{sibling, CreationStats};
use crate::format::{NodeRecord, RECORD_BYTES};
use crate::scan::{BackwardScan, ForwardScan};
use crate::stafile::ScratchPath;
use crate::traversal::bottom_up_scan;
use crate::update::{ArbUpdater, UpdateOp, UpdateReport};
use crate::v2::{self, BlockMap};
use arb_tree::{BinaryTree, LabelId, LabelTable, NONE};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// Process-wide sequence number making scratch paths unique per
/// evaluation (see [`ArbDatabase::scratch_sta`]).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Summary returned by [`ArbDatabase::validate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total nodes.
    pub nodes: u64,
    /// Element nodes.
    pub elem_nodes: u64,
    /// Character nodes.
    pub char_nodes: u64,
}

/// Subtree extents + child-kind flags of every node, shared by value:
/// evaluations hold an `Arc` snapshot, so an update installing fresh
/// extents never invalidates a plan already in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentVecs {
    /// One past the end of each node's **binary** subtree.
    pub ends: Vec<u32>,
    /// Child-kind flags (bit 0 first child, bit 1 second child).
    pub kinds: Vec<u8>,
}

/// On-disk layout of an opened database.
enum Format {
    /// Bare record array (the paper's layout).
    V1,
    /// Block-compressed v2 (see [`crate::v2`]).
    V2 {
        /// Validated block layout, shared with every blocked scan.
        map: Arc<BlockMap>,
        /// File offset of the extent section.
        extent_offset: u64,
        /// Layout of the extent section (fixed pre-update files, or
        /// varint-compressed).
        extent_format: v2::ExtentFormat,
    },
}

/// The epoch-scoped part of an opened database: everything that one
/// in-place update can change.
struct Mount {
    node_count: u32,
    format: Format,
    file_len: u64,
    /// Updates ever applied to the file (0 for v1 and pre-update v2).
    epoch: u64,
    /// `(appends, splices, deletes)` from the v2 header.
    counters: (u32, u32, u32),
}

impl Mount {
    fn from_v2(meta: &v2::V2Meta) -> Mount {
        Mount {
            node_count: meta.header.node_count,
            format: Format::V2 {
                map: meta.map.clone(),
                extent_offset: meta.header.extent_offset,
                extent_format: meta.header.extent_format,
            },
            file_len: meta.file_len,
            epoch: meta.header.epoch(),
            counters: (
                meta.header.appends,
                meta.header.splices,
                meta.header.deletes,
            ),
        }
    }
}

/// How many decoded v2 blocks [`CachedReader`] keeps. Spine reads of a
/// sharded run cluster, but interleaved spines (several shards probing
/// through one handle) ping-pong between a few blocks — a single slot
/// would re-decode on every alternation.
const POINT_READ_LRU_BLOCKS: usize = 4;

/// The cached point-read handle behind [`ArbDatabase::record_at`]: one
/// `File` for the lifetime of the database (the sequential spine of a
/// sharded run fetches a handful of scattered records and used to pay an
/// `open()` each), plus — on v2 — a small LRU of decoded blocks, since
/// spine indexes cluster but interleaved shards alternate between a few
/// of them. Updates clear the LRU (the file is rewritten in place, so
/// the handle itself stays valid).
struct CachedReader {
    file: File,
    /// Decoded v2 blocks, most recently used first; at most
    /// [`POINT_READ_LRU_BLOCKS`] entries, evicted allocations are
    /// reused for the incoming block. Always empty on v1.
    blocks: Vec<(u32, Vec<NodeRecord>)>,
    scratch: Vec<u8>,
}

/// A tree database in the Arb storage model: the `.arb` record file plus
/// its `.lab` label table.
pub struct ArbDatabase {
    arb_path: PathBuf,
    labels: LabelTable,
    mount: RwLock<Mount>,
    /// Scans opened on this handle (backward, forward) — the observable
    /// ground truth behind Proposition 5.1's two-linear-scans claim and
    /// the `EvalStats` scan counters (batched evaluation shares one scan
    /// pair across all queries of a batch).
    backward_scans: AtomicU64,
    forward_scans: AtomicU64,
    /// Lifetime count of v2 blocks decoded (and checksum-verified) by
    /// scans and point reads on this handle — always 0 on v1.
    blocks_decoded: Arc<AtomicU64>,
    reader: Mutex<CachedReader>,
    /// Lazily loaded subtree extents + child flags (see
    /// [`ArbDatabase::subtree_extents`]): a property of the document
    /// at its current epoch, so one load serves every sharded
    /// evaluation of this handle until an update drops it.
    extents: Mutex<Option<Arc<ExtentVecs>>>,
}

impl ArbDatabase {
    /// Opens an existing database, sniffing the format version from the
    /// file. v2 files have their header and block index fully validated
    /// here — truncation, bit flips, crashed creations and torn updates
    /// fail at open.
    pub fn open(arb_path: impl Into<PathBuf>) -> io::Result<Self> {
        let arb_path = arb_path.into();
        let mut file = File::open(&arb_path)?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        let is_v2 = file_len >= 8 && {
            file.read_exact(&mut magic)?;
            magic == v2::MAGIC
        };
        let lab_path = sibling(&arb_path, "lab");
        let lab_text = match std::fs::read_to_string(&lab_path) {
            Ok(s) => Some(s),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let parse_lab = |s: &str| {
            LabelTable::from_lab_str(s)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        };

        let (mount, labels) = if is_v2 {
            let meta = v2::read_meta(&mut file, file_len)?;
            let labels = match &lab_text {
                Some(s) => parse_lab(s)?,
                None if meta.header.tag_count == 0 => LabelTable::new(),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "missing .lab file: the database declares {} tags \
                             (without the label table every tag query would \
                             silently match nothing)",
                            meta.header.tag_count
                        ),
                    ));
                }
            };
            if labels.tag_count() as u32 != meta.header.tag_count {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        ".lab file resolves {} tags but the database declares {}",
                        labels.tag_count(),
                        meta.header.tag_count
                    ),
                ));
            }
            (Mount::from_v2(&meta), labels)
        } else {
            if file_len % RECORD_BYTES as u64 != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "size of .arb file is not a multiple of the record size",
                ));
            }
            let node_count = u32::try_from(file_len / RECORD_BYTES as u64).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "database exceeds 2^32 nodes")
            })?;
            let labels = match &lab_text {
                Some(s) => parse_lab(s)?,
                // v1 has no header to declare a tag count, so fall back
                // to scanning the records: any element node means tag
                // queries would need the missing table.
                None => {
                    file.seek(SeekFrom::Start(0))?;
                    let mut scan = ForwardScan::new(&mut file, node_count);
                    while let Some((ix, rec)) = scan.next_record()? {
                        if !rec.label.is_text() {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "missing .lab file: node {ix} is an element \
                                     (without the label table every tag query \
                                     would silently match nothing)"
                                ),
                            ));
                        }
                    }
                    LabelTable::new()
                }
            };
            (
                Mount {
                    node_count,
                    format: Format::V1,
                    file_len,
                    epoch: 0,
                    counters: (0, 0, 0),
                },
                labels,
            )
        };

        let reader = CachedReader {
            file: File::open(&arb_path)?,
            blocks: Vec::new(),
            scratch: Vec::new(),
        };
        Ok(ArbDatabase {
            arb_path,
            labels,
            mount: RwLock::new(mount),
            backward_scans: AtomicU64::new(0),
            forward_scans: AtomicU64::new(0),
            blocks_decoded: Arc::new(AtomicU64::new(0)),
            reader: Mutex::new(reader),
            extents: Mutex::new(None),
        })
    }

    /// Creates a database from an XML file on disk (in the default
    /// format, v2), then opens it.
    pub fn create_from_xml_file(
        xml_path: &Path,
        arb_path: impl Into<PathBuf>,
        config: &arb_xml::XmlConfig,
    ) -> Result<(Self, CreationStats), crate::create::CreateError> {
        Self::create_from_xml_file_with(
            xml_path,
            arb_path,
            config,
            crate::create::FormatVersion::default(),
        )
    }

    /// Creates a database from an XML file on disk in an explicit format,
    /// then opens it.
    pub fn create_from_xml_file_with(
        xml_path: &Path,
        arb_path: impl Into<PathBuf>,
        config: &arb_xml::XmlConfig,
        format: crate::create::FormatVersion,
    ) -> Result<(Self, CreationStats), crate::create::CreateError> {
        let arb_path = arb_path.into();
        let reader = io::BufReader::with_capacity(64 * 1024, File::open(xml_path)?);
        let (stats, _labels) =
            crate::create::create_from_xml_with(reader, config, &arb_path, format)?;
        let db = ArbDatabase::open(&arb_path)?;
        Ok((db, stats))
    }

    fn mount(&self) -> RwLockReadGuard<'_, Mount> {
        self.mount.read().expect("mount lock poisoned")
    }

    /// The number of nodes (at the current epoch).
    pub fn node_count(&self) -> u32 {
        self.mount().node_count
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Path of the `.arb` file.
    pub fn path(&self) -> &Path {
        &self.arb_path
    }

    /// The on-disk format version (1 or 2).
    pub fn format_version(&self) -> u8 {
        match self.mount().format {
            Format::V1 => 1,
            Format::V2 { .. } => 2,
        }
    }

    /// Actual size of the `.arb` file in bytes (for v2 this is the
    /// compressed size, not `node_count * RECORD_BYTES`).
    pub fn file_bytes(&self) -> u64 {
        self.mount().file_len
    }

    /// The file's update epoch: how many in-place updates it has ever
    /// absorbed. 0 for v1 files and for v2 files that predate the update
    /// API (PR 6 files open unchanged).
    pub fn epoch(&self) -> u64 {
        self.mount().epoch
    }

    /// The per-kind update counters `(appends, splices, deletes)` whose
    /// sum is [`epoch`](ArbDatabase::epoch). Always zero on v1.
    pub fn update_counters(&self) -> (u32, u32, u32) {
        self.mount().counters
    }

    /// Applies one in-place update through this handle: runs the
    /// [`ArbUpdater`] on the file, then atomically remounts the new
    /// epoch (node count, block map, update counters), installs the
    /// updater's freshly computed extents, and clears the point-read
    /// LRU. v1 databases reject updates.
    ///
    /// Serialized against this handle's other updates/revalidations by
    /// the mount lock, but **not** against concurrent scans — callers
    /// that evaluate and update concurrently hold their own
    /// reader/writer lock around whole evaluations (as the server does).
    pub fn apply_update(&self, op: &UpdateOp<'_>) -> io::Result<UpdateReport> {
        let mut m = self.mount.write().expect("mount lock poisoned");
        if matches!(m.format, Format::V1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "in-place updates require format v2 (recreate the database with --format v2)",
            ));
        }
        let mut updater = ArbUpdater::open(&self.arb_path)?;
        let report = updater.apply(op)?;
        let mut f = File::open(&self.arb_path)?;
        let file_len = f.metadata()?.len();
        let meta = v2::read_meta(&mut f, file_len)?;
        *m = Mount::from_v2(&meta);
        let (ends, kinds) = updater.extents();
        *self.extents.lock().expect("extents lock poisoned") = Some(Arc::new(ExtentVecs {
            ends: ends.to_vec(),
            kinds: kinds.to_vec(),
        }));
        self.reader
            .lock()
            .expect("reader mutex poisoned")
            .blocks
            .clear();
        Ok(report)
    }

    /// Checks whether **another** handle or process advanced the file's
    /// epoch and, if so, remounts: new node count and block map, cleared
    /// point-read LRU, dropped extent cache. Returns whether a remount
    /// happened. (Label-table growth from an offline `arb update` with
    /// new tags still requires reopening — existing labels are
    /// append-only, so this handle's table stays a valid prefix.)
    pub fn revalidate(&self) -> io::Result<bool> {
        let mut m = self.mount.write().expect("mount lock poisoned");
        if matches!(m.format, Format::V1) {
            return Ok(false);
        }
        let mut f = File::open(&self.arb_path)?;
        let file_len = f.metadata()?.len();
        let meta = v2::read_meta(&mut f, file_len)?;
        if meta.header.epoch() == m.epoch && meta.header.node_count == m.node_count {
            return Ok(false);
        }
        *m = Mount::from_v2(&meta);
        *self.extents.lock().expect("extents lock poisoned") = None;
        self.reader
            .lock()
            .expect("reader mutex poisoned")
            .blocks
            .clear();
        Ok(true)
    }

    /// Lifetime count of v2 blocks decoded (and checksum-verified) by
    /// this handle's scans and point reads. Always 0 on v1 databases.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_decoded.load(Ordering::Relaxed)
    }

    /// A fresh, uniquely named path for the temporary `.sta` state file
    /// of **one** query run, deleted when the returned guard drops.
    ///
    /// The name carries the pid and a process-wide counter: a fixed
    /// sibling path (the original design) meant two concurrent
    /// evaluations of one database clobbered each other's phase-1 state
    /// stream and silently corrupted both results.
    pub fn scratch_sta(&self) -> ScratchPath {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        ScratchPath::new(sibling(&self.arb_path, &format!("p{pid}-{seq}.sta")))
    }

    /// Removes scratch `.sta` streams (and their side files) that a
    /// **dead** process left next to this database — the delete-on-drop
    /// guard of [`scratch_sta`](ArbDatabase::scratch_sta) cannot run
    /// when its process is killed. Long-lived servers call this when
    /// they open a database. Returns the swept paths; see
    /// [`crate::stafile::sweep_stale_scratch`].
    pub fn sweep_stale_scratch(&self) -> io::Result<Vec<PathBuf>> {
        crate::stafile::sweep_stale_scratch(&self.arb_path)
    }

    /// Opens a forward record scan (top-down traversal input).
    pub fn forward_scan(&self) -> io::Result<ForwardScan<File>> {
        let n = self.node_count();
        self.forward_scan_range(0, n)
    }

    /// Opens a forward record scan over the preorder window `[lo, hi)` —
    /// a sharded phase-2 worker's view of one frontier subtree.
    pub fn forward_scan_range(&self, lo: u32, hi: u32) -> io::Result<ForwardScan<File>> {
        let m = self.mount();
        check_range(m.node_count, lo, hi)?;
        self.forward_scans.fetch_add(1, Ordering::Relaxed);
        let file = File::open(&self.arb_path)?;
        match &m.format {
            Format::V1 => ForwardScan::range(file, lo, hi),
            Format::V2 { map, .. } => Ok(ForwardScan::blocked(
                file,
                map.clone(),
                Some(self.blocks_decoded.clone()),
                lo,
                hi,
            )),
        }
    }

    /// Opens a backward record scan (bottom-up traversal input).
    pub fn backward_scan(&self) -> io::Result<BackwardScan<File>> {
        let n = self.node_count();
        self.backward_scan_range(0, n)
    }

    /// Opens a backward record scan over the preorder window `[lo, hi)` —
    /// a sharded phase-1 worker's view of one frontier subtree.
    pub fn backward_scan_range(&self, lo: u32, hi: u32) -> io::Result<BackwardScan<File>> {
        let m = self.mount();
        check_range(m.node_count, lo, hi)?;
        self.backward_scans.fetch_add(1, Ordering::Relaxed);
        let file = File::open(&self.arb_path)?;
        match &m.format {
            Format::V1 => BackwardScan::range(file, lo, hi),
            Format::V2 { map, .. } => Ok(BackwardScan::blocked(
                file,
                map.clone(),
                Some(self.blocks_decoded.clone()),
                lo,
                hi,
            )),
        }
    }

    /// Preorder subtree extents and child flags of every node (see
    /// [`crate::traversal::subtree_extents`]), cached on the handle —
    /// the frontier plan of sharded evaluation depends only on the
    /// document epoch, so repeated runs (prepared sessions are built to
    /// run many times) don't repeat the work. On v2 the extents were
    /// materialized at creation time and are **loaded** (checksum-
    /// verified, window by window) instead of recomputed with a
    /// metadata scan; on v1 the backward metadata scan runs on first
    /// use. Returned by `Arc` so an update installing fresh extents
    /// never pulls the rug from a plan already in flight.
    pub fn subtree_extents(&self) -> io::Result<Arc<ExtentVecs>> {
        if let Some(x) = self.extents.lock().expect("extents lock poisoned").as_ref() {
            return Ok(x.clone());
        }
        // Compute outside the cache lock (scans re-take the mount lock).
        enum Plan {
            V1,
            V2 {
                extent_offset: u64,
                extent_format: v2::ExtentFormat,
                n: u32,
            },
        }
        let plan = {
            let m = self.mount();
            match &m.format {
                Format::V1 => Plan::V1,
                Format::V2 {
                    extent_offset,
                    extent_format,
                    ..
                } => Plan::V2 {
                    extent_offset: *extent_offset,
                    extent_format: *extent_format,
                    n: m.node_count,
                },
            }
        };
        let (ends, kinds) = match plan {
            Plan::V1 => {
                let mut scan = self.backward_scan()?;
                crate::traversal::subtree_extents(&mut scan, self.node_count())?
            }
            Plan::V2 {
                extent_offset,
                extent_format,
                n,
            } => {
                let mut ends = Vec::with_capacity(n as usize);
                let mut kinds = Vec::with_capacity(n as usize);
                let mut f = File::open(&self.arb_path)?;
                for w in 0..v2::extent_windows(n) {
                    let (e, k) =
                        v2::read_extent_window(&mut f, extent_offset, n, w, extent_format)?;
                    ends.extend_from_slice(&e);
                    kinds.extend_from_slice(&k);
                }
                (ends, kinds)
            }
        };
        let arc = Arc::new(ExtentVecs { ends, kinds });
        let mut g = self.extents.lock().expect("extents lock poisoned");
        // A concurrent initializer raced us; either snapshot is fine.
        if let Some(x) = g.as_ref() {
            return Ok(x.clone());
        }
        *g = Some(arc.clone());
        Ok(arc)
    }

    /// True once [`ArbDatabase::subtree_extents`] has been computed (so
    /// callers can account the metadata scan honestly).
    pub fn extents_cached(&self) -> bool {
        self.extents
            .lock()
            .expect("extents lock poisoned")
            .is_some()
    }

    /// Number of on-disk extent windows (0 for v1, which has no extent
    /// section).
    pub fn extent_windows(&self) -> u32 {
        let m = self.mount();
        match m.format {
            Format::V1 => 0,
            Format::V2 { .. } => v2::extent_windows(m.node_count),
        }
    }

    /// Reads one extent window `(ends, kinds)` for the node range
    /// `[w·W, min((w+1)·W, n))` directly from the v2 extent section,
    /// without materializing the whole index — the building block for
    /// windowed frontier planning at any database size. Errors on v1.
    pub fn extent_window(&self, w: u32) -> io::Result<(Vec<u32>, Vec<u8>)> {
        let m = self.mount();
        match &m.format {
            Format::V1 => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "v1 databases have no on-disk extent section",
            )),
            Format::V2 {
                extent_offset,
                extent_format,
                ..
            } => {
                let mut f = File::open(&self.arb_path)?;
                v2::read_extent_window(&mut f, *extent_offset, m.node_count, w, *extent_format)
            }
        }
    }

    /// Reads a single record by preorder index — the sequential-spine
    /// nodes of a sharded run are a handful of scattered indexes, fetched
    /// through a cached handle instead of an `open()` per call. On v2 a
    /// small LRU of decoded blocks (`POINT_READ_LRU_BLOCKS`) is kept:
    /// spine indexes cluster, and interleaved shards alternate between a
    /// few blocks that a single-slot cache would keep re-decoding.
    pub fn record_at(&self, ix: u32) -> io::Result<NodeRecord> {
        let map = {
            let m = self.mount();
            if ix >= m.node_count {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("record {ix} outside the {}-record database", m.node_count),
                ));
            }
            match &m.format {
                Format::V1 => None,
                Format::V2 { map, .. } => Some(map.clone()),
            }
        };
        let mut r = self.reader.lock().expect("reader mutex poisoned");
        match map {
            None => {
                r.file
                    .seek(SeekFrom::Start(ix as u64 * RECORD_BYTES as u64))?;
                let mut buf = [0u8; RECORD_BYTES];
                r.file.read_exact(&mut buf)?;
                Ok(NodeRecord::from_bytes(buf))
            }
            Some(map) => {
                let b = map.block_of(ix);
                if let Some(pos) = r.blocks.iter().position(|(blk, _)| *blk == b) {
                    // Hit: freshen recency (move-to-front).
                    if pos != 0 {
                        let hit = r.blocks.remove(pos);
                        r.blocks.insert(0, hit);
                    }
                } else {
                    // Miss: decode into the evicted slot's allocation.
                    let mut buf = if r.blocks.len() >= POINT_READ_LRU_BLOCKS {
                        r.blocks.pop().expect("LRU at capacity is non-empty").1
                    } else {
                        Vec::new()
                    };
                    let CachedReader { file, scratch, .. } = &mut *r;
                    v2::read_block(
                        file,
                        map.offsets[b as usize],
                        map.records_in(b),
                        scratch,
                        &mut buf,
                    )?;
                    self.blocks_decoded.fetch_add(1, Ordering::Relaxed);
                    r.blocks.insert(0, (b, buf));
                }
                Ok(r.blocks[0].1[(ix - b * map.block_records) as usize])
            }
        }
    }

    /// Lifetime totals of `(backward, forward)` scans opened on this
    /// handle. Evaluators count their own scan opens for `EvalStats`;
    /// these totals are an independent cross-check (the batch
    /// differential suite asserts against them).
    pub fn scan_counts(&self) -> (u64, u64) {
        (
            self.backward_scans.load(Ordering::Relaxed),
            self.forward_scans.load(Ordering::Relaxed),
        )
    }

    /// Validates the database's structural integrity in one backward
    /// scan: the child flags must describe a single well-formed tree and
    /// every label must resolve (character range or `.lab` entry). On v2
    /// the scan also verifies every block checksum as a side effect.
    /// Returns a summary report.
    pub fn validate(&self) -> io::Result<ValidationReport> {
        let mut report = ValidationReport::default();
        let tag_limit = arb_tree::TEXT_LABELS as usize + self.labels.tag_count();
        let mut scan = self.backward_scan()?;
        let mut bad_label = None;
        crate::traversal::bottom_up_scan(&mut scan, |_: Option<()>, _, rec, ix| {
            if rec.label.is_text() {
                report.char_nodes += 1;
            } else {
                report.elem_nodes += 1;
                if rec.label.index() as usize >= tag_limit {
                    bad_label.get_or_insert((ix, rec.label.index()));
                }
            }
        })?;
        if let Some((ix, l)) = bad_label {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node {ix} has label #{l} beyond the .lab table"),
            ));
        }
        report.nodes = report.elem_nodes + report.char_nodes;
        Ok(report)
    }

    /// Materializes the database as an in-memory [`BinaryTree`] via one
    /// backward scan (Prop. 5.1). Used by tests, the naive baseline, and
    /// small interactive workloads.
    pub fn to_tree(&self) -> io::Result<BinaryTree> {
        let n = self.node_count() as usize;
        let mut labels = vec![LabelId(0); n];
        let mut first = vec![NONE; n];
        let mut second = vec![NONE; n];
        let mut scan = self.backward_scan()?;
        bottom_up_scan(&mut scan, |s1: Option<u32>, s2, rec, ix| {
            labels[ix as usize] = rec.label;
            if let Some(c) = s1 {
                first[ix as usize] = c;
            }
            if let Some(c) = s2 {
                second[ix as usize] = c;
            }
            ix
        })?;
        BinaryTree::from_parts(labels, first, second)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn check_range(node_count: u32, lo: u32, hi: u32) -> io::Result<()> {
    if lo > hi || hi > node_count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("scan range [{lo}, {hi}) outside the {node_count}-record database"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create::FormatVersion;
    use arb_xml::XmlConfig;
    use std::io::Cursor;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("arb-db-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn create(xml: &str, name: &str, format: FormatVersion) -> PathBuf {
        let arb = tmp(name);
        crate::create::create_from_xml_with(
            Cursor::new(xml.as_bytes()),
            &XmlConfig::default(),
            &arb,
            format,
        )
        .unwrap();
        arb
    }

    #[test]
    fn create_open_roundtrip_both_formats() {
        let xml = "<doc><sec>ab</sec><sec><p/>c</sec></doc>";
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let arb = create(xml, &format!("db1-{format}.arb"), format);
            let db = ArbDatabase::open(&arb).unwrap();
            assert_eq!(db.node_count(), 7);
            assert!(db.labels().get("doc").is_some());
            assert_eq!(
                db.format_version(),
                if format == FormatVersion::V1 { 1 } else { 2 }
            );
            assert_eq!(
                db.file_bytes(),
                std::fs::metadata(&arb).unwrap().len(),
                "file_bytes must report the actual on-disk size"
            );
            assert_eq!(db.epoch(), 0, "fresh files start at epoch 0");
            assert_eq!(db.update_counters(), (0, 0, 0));

            // Reconstruct and compare with direct parsing.
            let tree = db.to_tree().unwrap();
            let mut lt = LabelTable::new();
            let direct = arb_xml::str_to_tree(xml, &mut lt).unwrap();
            assert_eq!(tree.len(), direct.len());
            for v in tree.nodes() {
                assert_eq!(tree.has_first(v), direct.has_first(v));
                assert_eq!(tree.has_second(v), direct.has_second(v));
                assert_eq!(db.labels().name(tree.label(v)), lt.name(direct.label(v)));
            }
            assert_eq!(
                db.blocks_decoded(),
                if format == FormatVersion::V1 { 0 } else { 1 }
            );
        }
    }

    #[test]
    fn validate_accepts_good_and_rejects_corrupt() {
        let arb = create("<doc><a>xy</a></doc>", "dbv.arb", FormatVersion::V1);
        let db = ArbDatabase::open(&arb).unwrap();
        let report = db.validate().unwrap();
        assert_eq!(report.nodes, 4);
        assert_eq!(report.elem_nodes, 2);
        assert_eq!(report.char_nodes, 2);

        // Corrupt: claim a first child on the last record.
        let mut bytes = std::fs::read(&arb).unwrap();
        let n = bytes.len();
        bytes[n - 1] |= 0x80; // set has_first on final record
        let bad = tmp("dbv-bad.arb");
        std::fs::write(&bad, &bytes).unwrap();
        std::fs::copy(arb.with_extension("lab"), bad.with_extension("lab")).unwrap();
        let db = ArbDatabase::open(&bad).unwrap();
        assert!(db.validate().is_err());

        // Corrupt: label beyond the .lab table.
        let mut bytes = std::fs::read(&arb).unwrap();
        bytes[0] = 0xFF;
        bytes[1] = (bytes[1] & 0xC0) | 0x3F; // label = 16383
        let bad2 = tmp("dbv-bad2.arb");
        std::fs::write(&bad2, &bytes).unwrap();
        std::fs::copy(arb.with_extension("lab"), bad2.with_extension("lab")).unwrap();
        let db = ArbDatabase::open(&bad2).unwrap();
        assert!(db.validate().is_err());
    }

    #[test]
    fn open_rejects_ragged_file() {
        let p = tmp("ragged.arb");
        std::fs::write(&p, [1, 2, 3]).unwrap();
        assert!(ArbDatabase::open(&p).is_err());
    }

    #[test]
    fn missing_lab_is_an_error_when_elements_exist() {
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let arb = create("<doc><a>xy</a></doc>", &format!("dbl-{format}.arb"), format);
            std::fs::remove_file(sibling(&arb, "lab")).unwrap();
            let err = ArbDatabase::open(&arb).err().expect("must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{format}");
            assert!(err.to_string().contains(".lab"), "{format}: {err}");
        }
        // A v2 database with a stale .lab (wrong tag count) is rejected.
        let arb = create("<doc><a>x</a></doc>", "dbl-stale.arb", FormatVersion::V2);
        std::fs::write(sibling(&arb, "lab"), "doc\n").unwrap();
        assert!(ArbDatabase::open(&arb).is_err());
        // All-text v1 content opens fine without a .lab.
        let text_arb = tmp("dbl-text.arb");
        let rec = NodeRecord {
            label: LabelId(b'x' as u16),
            has_first: false,
            has_second: false,
        };
        std::fs::write(&text_arb, rec.to_bytes()).unwrap();
        std::fs::remove_file(sibling(&text_arb, "lab")).ok();
        assert_eq!(ArbDatabase::open(&text_arb).unwrap().node_count(), 1);
    }

    #[test]
    fn scratch_sta_paths_are_unique_siblings_and_cleaned_up() {
        let arb = tmp("db2.arb");
        std::fs::write(&arb, [0, 0]).unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        let a = db.scratch_sta();
        let b = db.scratch_sta();
        assert_ne!(a.path(), b.path(), "two runs must never share a path");
        assert!(a.path().to_string_lossy().ends_with(".sta"));
        assert_eq!(a.path().parent(), arb.parent());
        crate::stafile::allocate(a.path(), 4, crate::stafile::StaFormat::Flat).unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "scratch file must vanish with its guard");
    }

    #[test]
    fn record_at_and_range_scans_agree_with_full_scans() {
        let xml = "<doc><sec>ab</sec><sec><p/>c</sec></doc>";
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let arb = create(xml, &format!("db3-{format}.arb"), format);
            let db = ArbDatabase::open(&arb).unwrap();
            let mut all = Vec::new();
            let mut scan = db.forward_scan().unwrap();
            while let Some((ix, rec)) = scan.next_record().unwrap() {
                assert_eq!(db.record_at(ix).unwrap(), rec);
                all.push(rec);
            }
            let mut range = db.forward_scan_range(2, 5).unwrap();
            while let Some((ix, rec)) = range.next_record().unwrap() {
                assert_eq!(rec, all[ix as usize]);
            }
            let mut range = db.backward_scan_range(2, 5).unwrap();
            let mut seen = Vec::new();
            while let Some((ix, rec)) = range.next_record().unwrap() {
                assert_eq!(rec, all[ix as usize]);
                seen.push(ix);
            }
            assert_eq!(seen, vec![4, 3, 2]);
            assert!(db.forward_scan_range(5, 2).is_err());
            assert!(db.backward_scan_range(0, 99).is_err());
            assert!(db.record_at(99).is_err());
        }
    }

    #[test]
    fn record_at_lru_decodes_alternating_blocks_once() {
        // Two v2 blocks: BLOCK_RECORDS nodes of <a/> inside <doc> push the
        // tail records into block 1.
        let inner = "<a/>".repeat(crate::v2::BLOCK_RECORDS as usize);
        let xml = format!("<doc>{inner}</doc>");
        let arb = create(&xml, "db-lru.arb", FormatVersion::V2);
        let db = ArbDatabase::open(&arb).unwrap();
        assert!(db.node_count() > crate::v2::BLOCK_RECORDS);

        let lo = 1u32; // block 0
        let hi = db.node_count() - 1; // block 1
        let first_lo = db.record_at(lo).unwrap();
        let first_hi = db.record_at(hi).unwrap();
        assert_eq!(db.blocks_decoded(), 2);

        // Ping-ponging between the two blocks stays within the LRU: no
        // re-decode, same records.
        for _ in 0..8 {
            assert_eq!(db.record_at(lo).unwrap(), first_lo);
            assert_eq!(db.record_at(hi).unwrap(), first_hi);
        }
        assert_eq!(
            db.blocks_decoded(),
            2,
            "alternating point reads across cached blocks must not re-decode"
        );
    }

    #[test]
    fn v2_extents_match_v1_metadata_scan() {
        let xml = "<doc><sec>ab</sec><sec><p/>c</sec><tail/></doc>";
        let v1 = create(xml, "dbe-v1.arb", FormatVersion::V1);
        let v2f = create(xml, "dbe-v2.arb", FormatVersion::V2);
        let db1 = ArbDatabase::open(&v1).unwrap();
        let db2 = ArbDatabase::open(&v2f).unwrap();
        let x1 = db1.subtree_extents().unwrap();
        let x2 = db2.subtree_extents().unwrap();
        assert_eq!(x1.ends, x2.ends);
        assert_eq!(x1.kinds, x2.kinds);
        assert!(db1.extents_cached() && db2.extents_cached());
        assert_eq!(db1.extent_windows(), 0);
        assert_eq!(db2.extent_windows(), 1);
        let (we, wk) = db2.extent_window(0).unwrap();
        assert_eq!(we, x2.ends);
        assert_eq!(wk, x2.kinds);
        assert!(db1.extent_window(0).is_err());
        assert!(db2.extent_window(9).is_err());
    }

    #[test]
    fn apply_update_remounts_and_refreshes_caches() {
        let arb = create("<doc><a>x</a><b/></doc>", "dbu.arb", FormatVersion::V2);
        let db = ArbDatabase::open(&arb).unwrap();
        let before = db.subtree_extents().unwrap();
        let n = db.node_count();
        assert!(db.record_at(1).unwrap().has_first);

        // Delete <a>'s subtree through the handle.
        let rep = db
            .apply_update(&crate::update::UpdateOp::DeleteSubtree { at: 1 })
            .unwrap();
        assert_eq!(rep.epoch, 1);
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.update_counters(), (0, 0, 1));
        assert_eq!(db.node_count(), n - 2);
        let after = db.subtree_extents().unwrap();
        assert_ne!(before.ends, after.ends, "extent cache must refresh");
        // Point reads see the new epoch (old node 3 <b/> slid to 1).
        assert!(!db.record_at(1).unwrap().has_first);
        db.validate().unwrap();
        assert_eq!(
            db.file_bytes(),
            std::fs::metadata(&arb).unwrap().len(),
            "file_bytes must track the rewritten file"
        );

        // v1 databases reject updates.
        let v1 = create("<doc><a/></doc>", "dbu-v1.arb", FormatVersion::V1);
        let db1 = ArbDatabase::open(&v1).unwrap();
        assert!(db1
            .apply_update(&crate::update::UpdateOp::DeleteSubtree { at: 1 })
            .is_err());
        assert!(!db1.revalidate().unwrap());
    }

    #[test]
    fn revalidate_catches_external_updates() {
        let arb = create("<doc><a>x</a><b/></doc>", "dbr.arb", FormatVersion::V2);
        let reader_handle = ArbDatabase::open(&arb).unwrap();
        let n = reader_handle.node_count();
        let _ = reader_handle.subtree_extents().unwrap();
        assert!(!reader_handle.revalidate().unwrap(), "no update yet");

        // A second handle (standing in for another process) updates.
        let writer_handle = ArbDatabase::open(&arb).unwrap();
        writer_handle
            .apply_update(&crate::update::UpdateOp::DeleteSubtree { at: 1 })
            .unwrap();

        assert!(reader_handle.revalidate().unwrap(), "epoch moved");
        assert_eq!(reader_handle.epoch(), 1);
        assert_eq!(reader_handle.node_count(), n - 2);
        reader_handle.validate().unwrap();
        assert!(!reader_handle.revalidate().unwrap(), "already current");
    }
}
