//! `ArbDatabase` — an opened `.arb`/`.lab` pair.

use crate::create::{sibling, CreationStats};
use crate::format::{NodeRecord, RECORD_BYTES};
use crate::scan::{BackwardScan, ForwardScan};
use crate::stafile::ScratchPath;
use crate::traversal::bottom_up_scan;
use arb_tree::{BinaryTree, LabelId, LabelTable, NONE};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence number making scratch paths unique per
/// evaluation (see [`ArbDatabase::scratch_sta`]).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Summary returned by [`ArbDatabase::validate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total nodes.
    pub nodes: u64,
    /// Element nodes.
    pub elem_nodes: u64,
    /// Character nodes.
    pub char_nodes: u64,
}

/// A tree database in the Arb storage model: the `.arb` record file plus
/// its `.lab` label table.
pub struct ArbDatabase {
    arb_path: PathBuf,
    labels: LabelTable,
    node_count: u32,
    /// Scans opened on this handle (backward, forward) — the observable
    /// ground truth behind Proposition 5.1's two-linear-scans claim and
    /// the `EvalStats` scan counters (batched evaluation shares one scan
    /// pair across all queries of a batch).
    backward_scans: AtomicU64,
    forward_scans: AtomicU64,
    /// Lazily computed subtree extents + child flags (see
    /// [`ArbDatabase::subtree_extents`]): a property of the document
    /// alone, so one metadata scan serves every sharded evaluation of
    /// this handle.
    extents: std::sync::OnceLock<(Vec<u32>, Vec<u8>)>,
}

impl ArbDatabase {
    /// Opens an existing database.
    pub fn open(arb_path: impl Into<PathBuf>) -> io::Result<Self> {
        let arb_path = arb_path.into();
        let len = std::fs::metadata(&arb_path)?.len();
        if len % RECORD_BYTES as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "size of .arb file is not a multiple of the record size",
            ));
        }
        let node_count = u32::try_from(len / RECORD_BYTES as u64).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "database exceeds 2^32 nodes")
        })?;
        let lab_path = sibling(&arb_path, "lab");
        let labels = match std::fs::read_to_string(&lab_path) {
            Ok(s) => LabelTable::from_lab_str(&s)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => LabelTable::new(),
            Err(e) => return Err(e),
        };
        Ok(ArbDatabase {
            arb_path,
            labels,
            node_count,
            backward_scans: AtomicU64::new(0),
            forward_scans: AtomicU64::new(0),
            extents: std::sync::OnceLock::new(),
        })
    }

    /// Creates a database from an XML file on disk, then opens it.
    pub fn create_from_xml_file(
        xml_path: &Path,
        arb_path: impl Into<PathBuf>,
        config: &arb_xml::XmlConfig,
    ) -> Result<(Self, CreationStats), crate::create::CreateError> {
        let arb_path = arb_path.into();
        let reader = io::BufReader::with_capacity(64 * 1024, File::open(xml_path)?);
        let (stats, _labels) = crate::create::create_from_xml(reader, config, &arb_path)?;
        let db = ArbDatabase::open(&arb_path)?;
        Ok((db, stats))
    }

    /// The number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Path of the `.arb` file.
    pub fn path(&self) -> &Path {
        &self.arb_path
    }

    /// A fresh, uniquely named path for the temporary `.sta` state file
    /// of **one** query run, deleted when the returned guard drops.
    ///
    /// The name carries the pid and a process-wide counter: a fixed
    /// sibling path (the original design) meant two concurrent
    /// evaluations of one database clobbered each other's phase-1 state
    /// stream and silently corrupted both results.
    pub fn scratch_sta(&self) -> ScratchPath {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        ScratchPath::new(sibling(&self.arb_path, &format!("p{pid}-{seq}.sta")))
    }

    /// Opens a forward record scan (top-down traversal input).
    pub fn forward_scan(&self) -> io::Result<ForwardScan<File>> {
        self.forward_scan_range(0, self.node_count)
    }

    /// Opens a forward record scan over the preorder window `[lo, hi)` —
    /// a sharded phase-2 worker's view of one frontier subtree.
    pub fn forward_scan_range(&self, lo: u32, hi: u32) -> io::Result<ForwardScan<File>> {
        self.check_range(lo, hi)?;
        self.forward_scans.fetch_add(1, Ordering::Relaxed);
        ForwardScan::range(File::open(&self.arb_path)?, lo, hi)
    }

    /// Opens a backward record scan (bottom-up traversal input).
    pub fn backward_scan(&self) -> io::Result<BackwardScan<File>> {
        self.backward_scan_range(0, self.node_count)
    }

    /// Opens a backward record scan over the preorder window `[lo, hi)` —
    /// a sharded phase-1 worker's view of one frontier subtree.
    pub fn backward_scan_range(&self, lo: u32, hi: u32) -> io::Result<BackwardScan<File>> {
        self.check_range(lo, hi)?;
        self.backward_scans.fetch_add(1, Ordering::Relaxed);
        BackwardScan::range(File::open(&self.arb_path)?, lo, hi)
    }

    fn check_range(&self, lo: u32, hi: u32) -> io::Result<()> {
        if lo > hi || hi > self.node_count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "scan range [{lo}, {hi}) outside the {}-record database",
                    self.node_count
                ),
            ));
        }
        Ok(())
    }

    /// Preorder subtree extents and child flags of every node (see
    /// [`crate::traversal::subtree_extents`]), computed with one backward
    /// metadata scan on first use and cached on the handle — the
    /// frontier plan of sharded evaluation depends only on the document,
    /// so repeated runs (prepared sessions are built to run many times)
    /// don't repeat the scan.
    pub fn subtree_extents(&self) -> io::Result<(&[u32], &[u8])> {
        if self.extents.get().is_none() {
            let mut scan = self.backward_scan()?;
            let parts = crate::traversal::subtree_extents(&mut scan, self.node_count)?;
            // A concurrent initializer computed the same value; either
            // stick is fine.
            let _ = self.extents.set(parts);
        }
        let (ends, kinds) = self.extents.get().expect("initialized above");
        Ok((ends.as_slice(), kinds.as_slice()))
    }

    /// True once [`ArbDatabase::subtree_extents`] has been computed (so
    /// callers can account the metadata scan honestly).
    pub fn extents_cached(&self) -> bool {
        self.extents.get().is_some()
    }

    /// Reads a single record by preorder index — the sequential-spine
    /// nodes of a sharded run are a handful of scattered indexes, fetched
    /// directly instead of through a scan.
    pub fn record_at(&self, ix: u32) -> io::Result<NodeRecord> {
        if ix >= self.node_count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record {ix} outside the {}-record database",
                    self.node_count
                ),
            ));
        }
        let mut f = File::open(&self.arb_path)?;
        f.seek(SeekFrom::Start(ix as u64 * RECORD_BYTES as u64))?;
        let mut buf = [0u8; RECORD_BYTES];
        f.read_exact(&mut buf)?;
        Ok(NodeRecord::from_bytes(buf))
    }

    /// Lifetime totals of `(backward, forward)` scans opened on this
    /// handle. Evaluators count their own scan opens for `EvalStats`;
    /// these totals are an independent cross-check (the batch
    /// differential suite asserts against them).
    pub fn scan_counts(&self) -> (u64, u64) {
        (
            self.backward_scans.load(Ordering::Relaxed),
            self.forward_scans.load(Ordering::Relaxed),
        )
    }

    /// Validates the database's structural integrity in one backward
    /// scan: the child flags must describe a single well-formed tree and
    /// every label must resolve (character range or `.lab` entry).
    /// Returns a summary report.
    pub fn validate(&self) -> io::Result<ValidationReport> {
        let mut report = ValidationReport::default();
        let tag_limit = arb_tree::TEXT_LABELS as usize + self.labels.tag_count();
        let mut scan = self.backward_scan()?;
        let mut bad_label = None;
        crate::traversal::bottom_up_scan(&mut scan, |_: Option<()>, _, rec, ix| {
            if rec.label.is_text() {
                report.char_nodes += 1;
            } else {
                report.elem_nodes += 1;
                if rec.label.index() as usize >= tag_limit {
                    bad_label.get_or_insert((ix, rec.label.index()));
                }
            }
        })?;
        if let Some((ix, l)) = bad_label {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node {ix} has label #{l} beyond the .lab table"),
            ));
        }
        report.nodes = report.elem_nodes + report.char_nodes;
        Ok(report)
    }

    /// Materializes the database as an in-memory [`BinaryTree`] via one
    /// backward scan (Prop. 5.1). Used by tests, the naive baseline, and
    /// small interactive workloads.
    pub fn to_tree(&self) -> io::Result<BinaryTree> {
        let n = self.node_count as usize;
        let mut labels = vec![LabelId(0); n];
        let mut first = vec![NONE; n];
        let mut second = vec![NONE; n];
        let mut scan = self.backward_scan()?;
        bottom_up_scan(&mut scan, |s1: Option<u32>, s2, rec, ix| {
            labels[ix as usize] = rec.label;
            if let Some(c) = s1 {
                first[ix as usize] = c;
            }
            if let Some(c) = s2 {
                second[ix as usize] = c;
            }
            ix
        })?;
        BinaryTree::from_parts(labels, first, second)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_xml::XmlConfig;
    use std::io::Cursor;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("arb-db-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn create_open_roundtrip() {
        let xml = "<doc><sec>ab</sec><sec><p/>c</sec></doc>";
        let arb = tmp("db1.arb");
        crate::create::create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb)
            .unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        assert_eq!(db.node_count(), 7);
        assert!(db.labels().get("doc").is_some());

        // Reconstruct and compare with direct parsing.
        let tree = db.to_tree().unwrap();
        let mut lt = LabelTable::new();
        let direct = arb_xml::str_to_tree(xml, &mut lt).unwrap();
        assert_eq!(tree.len(), direct.len());
        for v in tree.nodes() {
            assert_eq!(tree.has_first(v), direct.has_first(v));
            assert_eq!(tree.has_second(v), direct.has_second(v));
            assert_eq!(db.labels().name(tree.label(v)), lt.name(direct.label(v)));
        }
    }

    #[test]
    fn validate_accepts_good_and_rejects_corrupt() {
        let xml = "<doc><a>xy</a></doc>";
        let arb = tmp("dbv.arb");
        crate::create::create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb)
            .unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        let report = db.validate().unwrap();
        assert_eq!(report.nodes, 4);
        assert_eq!(report.elem_nodes, 2);
        assert_eq!(report.char_nodes, 2);

        // Corrupt: claim a first child on the last record.
        let mut bytes = std::fs::read(&arb).unwrap();
        let n = bytes.len();
        bytes[n - 1] |= 0x80; // set has_first on final record
        let bad = tmp("dbv-bad.arb");
        std::fs::write(&bad, &bytes).unwrap();
        std::fs::copy(arb.with_extension("lab"), bad.with_extension("lab")).unwrap();
        let db = ArbDatabase::open(&bad).unwrap();
        assert!(db.validate().is_err());

        // Corrupt: label beyond the .lab table.
        let mut bytes = std::fs::read(&arb).unwrap();
        bytes[0] = 0xFF;
        bytes[1] = (bytes[1] & 0xC0) | 0x3F; // label = 16383
        let bad2 = tmp("dbv-bad2.arb");
        std::fs::write(&bad2, &bytes).unwrap();
        std::fs::copy(arb.with_extension("lab"), bad2.with_extension("lab")).unwrap();
        let db = ArbDatabase::open(&bad2).unwrap();
        assert!(db.validate().is_err());
    }

    #[test]
    fn open_rejects_ragged_file() {
        let p = tmp("ragged.arb");
        std::fs::write(&p, [1, 2, 3]).unwrap();
        assert!(ArbDatabase::open(&p).is_err());
    }

    #[test]
    fn scratch_sta_paths_are_unique_siblings_and_cleaned_up() {
        let arb = tmp("db2.arb");
        std::fs::write(&arb, [0, 0]).unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        let a = db.scratch_sta();
        let b = db.scratch_sta();
        assert_ne!(a.path(), b.path(), "two runs must never share a path");
        assert!(a.path().to_string_lossy().ends_with(".sta"));
        assert_eq!(a.path().parent(), arb.parent());
        crate::stafile::allocate(a.path(), 4).unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "scratch file must vanish with its guard");
    }

    #[test]
    fn record_at_and_range_scans_agree_with_full_scans() {
        let xml = "<doc><sec>ab</sec><sec><p/>c</sec></doc>";
        let arb = tmp("db3.arb");
        crate::create::create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &arb)
            .unwrap();
        let db = ArbDatabase::open(&arb).unwrap();
        let mut all = Vec::new();
        let mut scan = db.forward_scan().unwrap();
        while let Some((ix, rec)) = scan.next_record().unwrap() {
            assert_eq!(db.record_at(ix).unwrap(), rec);
            all.push(rec);
        }
        let mut range = db.forward_scan_range(2, 5).unwrap();
        while let Some((ix, rec)) = range.next_record().unwrap() {
            assert_eq!(rec, all[ix as usize]);
        }
        let mut range = db.backward_scan_range(2, 5).unwrap();
        let mut seen = Vec::new();
        while let Some((ix, rec)) = range.next_record().unwrap() {
            assert_eq!(rec, all[ix as usize]);
            seen.push(ix);
        }
        assert_eq!(seen, vec![4, 3, 2]);
        assert!(db.forward_scan_range(5, 2).is_err());
        assert!(db.backward_scan_range(0, 99).is_err());
        assert!(db.record_at(99).is_err());
    }
}
