//! The 2-byte node record format.
//!
//! "Each node v is stored as a fixed-size field of k bytes on disk in
//! which the two highest bits denote whether v has a first and/or a
//! second child and the remaining 8k−2 bits are used to hold an integer
//! denoting the label of v. [...] In our implementation, by default,
//! k = 2, and the tree can therefore contain 2^14 = 16384 different
//! labels." (paper Section 5)

use arb_tree::{LabelId, NodeInfo};

/// Bytes per node record (the paper's default `k`).
pub const RECORD_BYTES: usize = 2;

/// Bit flag: the node has a first child.
const HAS_FIRST: u16 = 1 << 15;
/// Bit flag: the node has a second child.
const HAS_SECOND: u16 = 1 << 14;
/// Mask for the 14-bit label.
const LABEL_MASK: u16 = (1 << 14) - 1;

/// A decoded node record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeRecord {
    /// Node label (14 bits).
    pub label: LabelId,
    /// Whether a first child follows.
    pub has_first: bool,
    /// Whether a second child exists.
    pub has_second: bool,
}

impl NodeRecord {
    /// Encodes to the on-disk `u16`. The label must already be in the
    /// 14-bit label space — writers that accept caller-supplied labels
    /// go through [`NodeRecord::checked_bytes`] instead, which turns an
    /// out-of-range label into an error rather than wrapping it.
    #[inline]
    pub fn encode(self) -> u16 {
        debug_assert!(self.label.0 <= LABEL_MASK);
        (self.label.0 & LABEL_MASK)
            | if self.has_first { HAS_FIRST } else { 0 }
            | if self.has_second { HAS_SECOND } else { 0 }
    }

    /// Checked encoding: errors on a label outside the 14-bit space.
    /// `create_from_tree` accepts arbitrary `LabelId`s from callers, so
    /// the unchecked [`NodeRecord::encode`] (a `debug_assert!` plus a
    /// mask) used to truncate such labels silently in release builds —
    /// writing a *different* label to disk with no diagnostic.
    #[inline]
    pub fn checked_bytes(self) -> std::io::Result<[u8; RECORD_BYTES]> {
        if self.label.0 > LABEL_MASK {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("label #{} outside the 14-bit label space", self.label.0),
            ));
        }
        Ok(self.to_bytes())
    }

    /// Decodes from the on-disk `u16`.
    #[inline]
    pub fn decode(raw: u16) -> Self {
        NodeRecord {
            label: LabelId(raw & LABEL_MASK),
            has_first: raw & HAS_FIRST != 0,
            has_second: raw & HAS_SECOND != 0,
        }
    }

    /// On-disk little-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; RECORD_BYTES] {
        self.encode().to_le_bytes()
    }

    /// Decodes from on-disk bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; RECORD_BYTES]) -> Self {
        Self::decode(u16::from_le_bytes(bytes))
    }

    /// The automaton input symbol for this record at preorder index `ix`
    /// (index 0 is the root).
    #[inline]
    pub fn info(self, ix: u32) -> NodeInfo {
        NodeInfo {
            label: self.label,
            has_first: self.has_first,
            has_second: self.has_second,
            is_root: ix == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_flag_combinations() {
        for label in [0u16, 1, 255, 256, 16383] {
            for has_first in [false, true] {
                for has_second in [false, true] {
                    let r = NodeRecord {
                        label: LabelId(label),
                        has_first,
                        has_second,
                    };
                    assert_eq!(NodeRecord::decode(r.encode()), r);
                    assert_eq!(NodeRecord::from_bytes(r.to_bytes()), r);
                }
            }
        }
    }

    #[test]
    fn flags_in_two_highest_bits() {
        let r = NodeRecord {
            label: LabelId(0),
            has_first: true,
            has_second: true,
        };
        assert_eq!(r.encode(), 0b1100_0000_0000_0000);
        let r = NodeRecord {
            label: LabelId(LABEL_MASK),
            has_first: false,
            has_second: false,
        };
        assert_eq!(r.encode(), LABEL_MASK);
    }

    #[test]
    fn checked_encoding_rejects_out_of_range_labels() {
        let bad = NodeRecord {
            label: LabelId(1 << 14),
            has_first: false,
            has_second: false,
        };
        let err = bad.checked_bytes().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let good = NodeRecord {
            label: LabelId((1 << 14) - 1),
            has_first: true,
            has_second: false,
        };
        assert_eq!(good.checked_bytes().unwrap(), good.to_bytes());
    }

    #[test]
    fn info_marks_root_at_index_zero() {
        let r = NodeRecord {
            label: LabelId(300),
            has_first: true,
            has_second: false,
        };
        assert!(r.info(0).is_root);
        assert!(!r.info(5).is_root);
    }
}
