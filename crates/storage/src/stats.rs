//! Database profiling: distributions computed in one linear scan.
//!
//! Useful both operationally (`arb stats --full`) and for checking that
//! synthetic workloads match the corpus shapes the paper reports (tag
//! counts, character/element ratios, tree depths).

use crate::db::ArbDatabase;
use arb_tree::LabelId;
use std::collections::HashMap;
use std::io;

/// Distribution profile of a database.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Total nodes.
    pub nodes: u64,
    /// Element nodes.
    pub elem_nodes: u64,
    /// Character nodes.
    pub char_nodes: u64,
    /// Per-tag element counts (tag labels only).
    pub tag_counts: HashMap<LabelId, u64>,
    /// Maximum unranked (XML) depth.
    pub max_depth: u32,
    /// Maximum unranked fan-out (children per element).
    pub max_fanout: u64,
    /// Leaf elements (no children).
    pub leaf_elems: u64,
}

impl Profile {
    /// Top `k` tags by count, with names resolved.
    pub fn top_tags<'a>(
        &self,
        db: &'a ArbDatabase,
        k: usize,
    ) -> Vec<(std::borrow::Cow<'a, str>, u64)> {
        let mut v: Vec<(LabelId, u64)> = self.tag_counts.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v.truncate(k);
        v.into_iter()
            .map(|(l, c)| (db.labels().name(l), c))
            .collect()
    }
}

/// Computes the profile by one backward scan (Prop. 5.1 fold: each node
/// returns its subtree's unranked depth and its own sibling-chain info).
pub fn profile(db: &ArbDatabase) -> io::Result<Profile> {
    let mut p = Profile::default();
    let mut scan = db.backward_scan()?;
    // Fold value per binary subtree root: (unranked depth of the subtree
    // rooted at this node *as an unranked node*, number of siblings in
    // this node's chain including itself, max depth among the chain).
    struct Fold {
        chain_len: u64,
        chain_max_depth: u32,
    }
    crate::traversal::bottom_up_scan(&mut scan, |s1: Option<Fold>, s2, rec, _ix| {
        p.nodes += 1;
        if rec.label.is_text() {
            p.char_nodes += 1;
        } else {
            p.elem_nodes += 1;
            *p.tag_counts.entry(rec.label).or_insert(0) += 1;
        }
        let (kids_depth, fanout) = match &s1 {
            Some(f) => (f.chain_max_depth, f.chain_len),
            None => (0, 0),
        };
        if !rec.label.is_text() {
            if fanout == 0 {
                p.leaf_elems += 1;
            }
            p.max_fanout = p.max_fanout.max(fanout);
        }
        let my_depth = kids_depth + 1;
        p.max_depth = p.max_depth.max(my_depth);
        match s2 {
            Some(next) => Fold {
                chain_len: next.chain_len + 1,
                chain_max_depth: next.chain_max_depth.max(my_depth),
            },
            None => Fold {
                chain_len: 1,
                chain_max_depth: my_depth,
            },
        }
    })?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create::create_from_xml;
    use arb_xml::XmlConfig;
    use std::io::Cursor;

    fn mkdb(xml: &str, name: &str) -> ArbDatabase {
        let dir = std::env::temp_dir().join(format!("arb-prof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        create_from_xml(Cursor::new(xml.as_bytes()), &XmlConfig::default(), &path).unwrap();
        ArbDatabase::open(&path).unwrap()
    }

    #[test]
    fn profile_counts_and_depth() {
        // <a><b>xy</b><b/><c><d/></c></a>: depth 3 (a > c > d),
        // max fanout 3 (a's children), leaves: d and the empty b.
        let db = mkdb("<a><b>xy</b><b/><c><d/></c></a>", "p1.arb");
        let p = profile(&db).unwrap();
        assert_eq!(p.nodes, 7);
        assert_eq!(p.elem_nodes, 5);
        assert_eq!(p.char_nodes, 2);
        assert_eq!(p.max_depth, 3);
        assert_eq!(p.max_fanout, 3);
        assert_eq!(p.leaf_elems, 2);
        let top = p.top_tags(&db, 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[0].1, 2);
    }

    #[test]
    fn deep_chain_depth() {
        let db = mkdb("<a><a><a><a/></a></a></a>", "p2.arb");
        let p = profile(&db).unwrap();
        assert_eq!(p.max_depth, 4);
        assert_eq!(p.max_fanout, 1);
    }
}
