//! The temporary `.evt` SAX-event file.
//!
//! Database creation first streams the document's SAX events to disk —
//! "two events – a 'begin' and an 'end' event for each node", two bytes
//! per event (paper Figure 5, column 7) — so that the second pass can
//! read them *backwards* to produce the `.arb` file.
//!
//! Encoding: bit 15 = end-event flag, bits 0–13 = label.

use arb_tree::LabelId;

/// Bytes per event record.
pub const EVENT_BYTES: usize = 2;

const END_FLAG: u16 = 1 << 15;

/// A begin/end event for one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// Node begins (subtree follows).
    Begin(LabelId),
    /// Node ends.
    End(LabelId),
}

impl Event {
    /// Encodes to the on-disk `u16`.
    #[inline]
    pub fn encode(self) -> u16 {
        match self {
            Event::Begin(l) => l.0,
            Event::End(l) => l.0 | END_FLAG,
        }
    }

    /// Decodes from the on-disk `u16`.
    #[inline]
    pub fn decode(raw: u16) -> Self {
        if raw & END_FLAG != 0 {
            Event::End(LabelId(raw & !END_FLAG))
        } else {
            Event::Begin(LabelId(raw))
        }
    }

    /// On-disk little-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; EVENT_BYTES] {
        self.encode().to_le_bytes()
    }

    /// Decodes from on-disk bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; EVENT_BYTES]) -> Self {
        Self::decode(u16::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for l in [0u16, 65, 255, 256, 16383] {
            let b = Event::Begin(LabelId(l));
            let e = Event::End(LabelId(l));
            assert_eq!(Event::from_bytes(b.to_bytes()), b);
            assert_eq!(Event::from_bytes(e.to_bytes()), e);
            assert_ne!(b.encode(), e.encode());
        }
    }
}
