//! Traversal utilities: postorder, unranked depth, document events.

use crate::label::LabelId;
use crate::tree::{BinaryTree, NodeId};

/// Bottom-up (postorder with respect to the binary structure: first-child
/// subtree, second-child subtree, node) visit order.
///
/// This matches the order in which the bottom-up automaton run assigns
/// states, and equals *reverse preorder* reversed node-last... concretely:
/// it is the order a backward linear scan of the `.arb` file completes
/// nodes (paper Prop. 5.1).
pub fn postorder(tree: &BinaryTree) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(tree.len());
    if tree.is_empty() {
        return out;
    }
    // Emulate the backward scan: nodes in reverse preorder are exactly the
    // order in which subtrees complete bottom-up; but classic postorder
    // (left, right, node) is also available via an explicit stack.
    let mut stack: Vec<(NodeId, bool)> = vec![(tree.root(), false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            out.push(v);
        } else {
            stack.push((v, true));
            if let Some(c) = tree.second_child(v) {
                stack.push((c, false));
            }
            if let Some(c) = tree.first_child(v) {
                stack.push((c, false));
            }
        }
    }
    out
}

/// Unranked depth of the tree: the maximum number of `FirstChild` edges on
/// any root-to-node path plus one. This bounds the stacks required by the
/// storage-model traversals (paper Prop. 5.1).
pub fn unranked_depth(tree: &BinaryTree) -> usize {
    if tree.is_empty() {
        return 0;
    }
    let n = tree.len();
    let mut depth = vec![1usize; n];
    let mut max = 1;
    for v in 0..n as u32 {
        let d = depth[v as usize];
        if let Some(c) = tree.first_child(NodeId(v)) {
            depth[c.ix()] = d + 1;
            max = max.max(d + 1);
        }
        if let Some(c) = tree.second_child(NodeId(v)) {
            depth[c.ix()] = d; // siblings share unranked depth
        }
    }
    max
}

/// A document event reconstructed from the binary tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DocEvent {
    /// Element open tag.
    Open(NodeId, LabelId),
    /// Element close tag.
    Close(NodeId, LabelId),
    /// Text character node.
    Char(NodeId, u8),
}

/// Reconstructs the unranked document event stream (open/char/close) from
/// the binary tree by a single preorder walk — the inverse of
/// [`crate::TreeBuilder`]. Character-labeled nodes become [`DocEvent::Char`].
pub fn doc_events(tree: &BinaryTree) -> Vec<DocEvent> {
    let mut out = Vec::with_capacity(tree.len() * 2);
    if tree.is_empty() {
        return out;
    }
    // Stack holds (node, label) of open elements awaiting their close.
    let mut open: Vec<(NodeId, LabelId)> = Vec::new();
    let mut v = tree.root();
    loop {
        let label = tree.label(v);
        let is_char = label.is_text();
        if is_char {
            out.push(DocEvent::Char(v, label.text_byte().expect("text label")));
        } else {
            out.push(DocEvent::Open(v, label));
        }
        if !is_char && tree.has_first(v) {
            open.push((v, label));
            v = tree.first_child(v).expect("has_first");
            continue;
        }
        if !is_char {
            out.push(DocEvent::Close(v, label));
        }
        // Ascend until a node with an unvisited second child is found.
        let mut cur = v;
        loop {
            if let Some(s) = tree.second_child(cur) {
                v = s;
                break;
            }
            match open.pop() {
                Some((p, pl)) => {
                    out.push(DocEvent::Close(p, pl));
                    cur = p;
                }
                None => return out,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;
    use crate::tree::TreeBuilder;

    fn sample() -> (BinaryTree, LabelId, LabelId) {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let b = lt.intern("b").unwrap();
        let mut t = TreeBuilder::new();
        t.open(a);
        t.open(b);
        t.text(b"x");
        t.close();
        t.open(b);
        t.close();
        t.close();
        (t.finish().unwrap(), a, b)
    }

    #[test]
    fn postorder_children_before_parents() {
        let (t, _, _) = sample();
        let order = postorder(&t);
        assert_eq!(order.len(), t.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.nodes() {
            for c in [t.first_child(v), t.second_child(v)].into_iter().flatten() {
                assert!(pos[&c] < pos[&v], "child {c:?} after parent {v:?}");
            }
        }
    }

    #[test]
    fn doc_events_roundtrip() {
        let (t, _, _) = sample();
        let evs = doc_events(&t);
        // Rebuild via TreeBuilder and compare structure.
        let mut b = TreeBuilder::new();
        for e in &evs {
            match e {
                DocEvent::Open(_, l) => b.open(*l),
                DocEvent::Close(_, _) => b.close(),
                DocEvent::Char(_, c) => b.text(&[*c]),
            }
        }
        let t2 = b.finish().unwrap();
        assert_eq!(t.parts(), t2.parts());
    }

    #[test]
    fn unranked_depth_flat_vs_nested() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        // Flat: root with 10 children => depth 2.
        let mut b = TreeBuilder::new();
        b.open(a);
        for _ in 0..10 {
            b.leaf(a);
        }
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(unranked_depth(&t), 2);
        // Nested chain of 5 => depth 5.
        let mut b = TreeBuilder::new();
        for _ in 0..5 {
            b.open(a);
        }
        for _ in 0..5 {
            b.close();
        }
        let t = b.finish().unwrap();
        assert_eq!(unranked_depth(&t), 5);
    }
}
