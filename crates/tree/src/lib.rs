//! # arb-tree
//!
//! The binary tree data model underlying the Arb system (Koch, VLDB 2003,
//! Section 2.1).
//!
//! XML documents are unranked ordered labeled trees. Arb works on their
//! *binary tree encoding*: the first child of a node in the unranked tree
//! becomes the **first (left) child** in the binary tree, and the right
//! neighboring sibling becomes the **second (right) child** (paper Figure 1).
//! Text is modeled as one leaf node per character (labels 0..=255 are
//! reserved for text bytes).
//!
//! This crate provides:
//!
//! * [`LabelId`] / [`LabelTable`] — interned node labels with the paper's
//!   14-bit label space and reserved character range,
//! * [`BinaryTree`] — an immutable binary tree stored in preorder,
//! * [`TreeBuilder`] — construction from unranked document events
//!   (open/text/close), guaranteeing preorder layout,
//! * [`infix`] — the balanced "infix" sequence trees of paper Figure 4,
//! * [`NodeSet`] — compact node-id sets used for query results,
//! * traversal utilities (preorder, postorder, depths, document order).

pub mod infix;
pub mod label;
pub mod nodeset;
pub mod traverse;
pub mod tree;

pub use label::{LabelId, LabelTable, MAX_LABELS, TEXT_LABELS};
pub use nodeset::NodeSet;
pub use tree::{BinaryTree, NodeId, NodeInfo, TreeBuilder, NONE};
