//! Node labels and the label table (`.lab` model).
//!
//! The Arb storage model (paper Section 5) encodes each node label as a
//! 14-bit integer. Indexes `0..=255` are reserved for text characters (one
//! node per text byte); indexes `>= 256` name element tags, whose string
//! names live in a separate `.lab` file, whitespace-separated, where the
//! name of label `i` is the `(i - 255)`-th entry.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

/// Number of label indexes reserved for text characters (bytes `0..=255`).
pub const TEXT_LABELS: u16 = 256;

/// Maximum number of distinct labels: the storage model uses 14 bits
/// (2 bytes per node minus 2 flag bits), i.e. `2^14 = 16384` labels.
pub const MAX_LABELS: u16 = 1 << 14;

/// An interned node label.
///
/// Values `0..=255` are text characters; values `256..` are tag names
/// resolved through a [`LabelTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u16);

impl LabelId {
    /// The label of a text character node.
    #[inline]
    pub fn from_char_byte(b: u8) -> Self {
        LabelId(b as u16)
    }

    /// `true` if this label denotes a text character node.
    #[inline]
    pub fn is_text(self) -> bool {
        self.0 < TEXT_LABELS
    }

    /// The text byte, if this is a character label.
    #[inline]
    pub fn text_byte(self) -> Option<u8> {
        if self.is_text() {
            Some(self.0 as u8)
        } else {
            None
        }
    }

    /// Raw 14-bit index.
    #[inline]
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(b) = self.text_byte() {
            write!(f, "LabelId({:?})", b as char)
        } else {
            write!(f, "LabelId(#{})", self.0)
        }
    }
}

/// Errors raised while interning labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// The 14-bit label space (16384 labels) is exhausted.
    TooManyLabels,
    /// Tag names are stored whitespace-separated in the `.lab` file and so
    /// must not contain whitespace (XML tag names never do).
    InvalidName(String),
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::TooManyLabels => {
                write!(f, "label space exhausted ({} labels max)", MAX_LABELS)
            }
            LabelError::InvalidName(n) => write!(f, "invalid label name {n:?}"),
        }
    }
}

impl std::error::Error for LabelError {}

/// Interning table for tag-name labels.
///
/// Character labels (`0..=255`) are implicit and never stored. Tag labels
/// are dense from 256 upward, in first-seen order — exactly the order of
/// entries in the `.lab` file.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    names: Vec<String>,
    by_name: HashMap<String, u16>,
}

impl LabelTable {
    /// Empty table (only the 256 implicit character labels exist).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tag-name labels (excludes the 256 character labels).
    pub fn tag_count(&self) -> usize {
        self.names.len()
    }

    /// Total number of labels in use, including the reserved character range.
    pub fn label_count(&self) -> usize {
        self.names.len() + TEXT_LABELS as usize
    }

    /// Intern a tag name, returning its label.
    pub fn intern(&mut self, name: &str) -> Result<LabelId, LabelError> {
        if let Some(&ix) = self.by_name.get(name) {
            return Ok(LabelId(ix));
        }
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(LabelError::InvalidName(name.to_string()));
        }
        let ix = TEXT_LABELS as usize + self.names.len();
        if ix >= MAX_LABELS as usize {
            return Err(LabelError::TooManyLabels);
        }
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), ix as u16);
        Ok(LabelId(ix as u16))
    }

    /// Look up a previously interned tag name.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).map(|&ix| LabelId(ix))
    }

    /// Human-readable name of a label: the tag name, or the character for
    /// text labels.
    pub fn name(&self, label: LabelId) -> Cow<'_, str> {
        if let Some(b) = label.text_byte() {
            Cow::Owned((b as char).to_string())
        } else {
            let ix = (label.0 - TEXT_LABELS) as usize;
            match self.names.get(ix) {
                Some(n) => Cow::Borrowed(n.as_str()),
                None => Cow::Owned(format!("#{}", label.0)),
            }
        }
    }

    /// Iterate over tag names in label order (the `.lab` file order).
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Serialize to the `.lab` file format: whitespace-separated entries.
    pub fn to_lab_string(&self) -> String {
        self.names.join("\n")
    }

    /// Parse the `.lab` file format.
    pub fn from_lab_str(s: &str) -> Result<Self, LabelError> {
        let mut t = Self::new();
        for entry in s.split_whitespace() {
            t.intern(entry)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_labels_are_implicit() {
        let l = LabelId::from_char_byte(b'A');
        assert!(l.is_text());
        assert_eq!(l.text_byte(), Some(b'A'));
        let t = LabelTable::new();
        assert_eq!(t.name(l), "A");
        assert_eq!(t.label_count(), 256);
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = LabelTable::new();
        let a = t.intern("gene").unwrap();
        let b = t.intern("sequence").unwrap();
        let a2 = t.intern("gene").unwrap();
        assert_eq!(a, a2);
        assert_eq!(a.0, 256);
        assert_eq!(b.0, 257);
        assert_eq!(t.name(a), "gene");
        assert!(!a.is_text());
    }

    #[test]
    fn lab_roundtrip() {
        let mut t = LabelTable::new();
        for n in ["a", "b", "c", "publication", "page"] {
            t.intern(n).unwrap();
        }
        let s = t.to_lab_string();
        let t2 = LabelTable::from_lab_str(&s).unwrap();
        assert_eq!(t2.tag_count(), 5);
        assert_eq!(t2.get("publication"), t.get("publication"));
        assert_eq!(t2.name(LabelId(258)), "c");
    }

    #[test]
    fn rejects_whitespace_names() {
        let mut t = LabelTable::new();
        assert!(t.intern("bad name").is_err());
        assert!(t.intern("").is_err());
    }

    #[test]
    fn label_space_is_14_bits() {
        assert_eq!(MAX_LABELS, 16384);
    }
}
