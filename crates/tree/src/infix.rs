//! Sequence-as-tree encodings of paper Figure 4.
//!
//! A string of symbols can be represented as a *flat* tree — a root with
//! one child per symbol, chained through `NextSibling` (an extremely
//! right-deep binary tree) — or as a balanced *infix* tree, where the
//! in-order traversal of a complete binary tree spells the sequence. The
//! infix form enables parallel processing (paper Section 6.2) because the
//! binary tree is balanced.

use crate::label::LabelId;
use crate::tree::{BinaryTree, NodeId, TreeBuilder, NONE};

/// Builds the flat tree of Figure 4(a): a root labeled `root_label` whose
/// unranked children are the symbols of `seq` in order.
pub fn flat_tree(root_label: LabelId, seq: &[LabelId]) -> BinaryTree {
    let mut b = TreeBuilder::with_capacity(seq.len() + 1);
    b.open(root_label);
    for &s in seq {
        b.leaf(s);
    }
    b.close();
    b.finish().expect("flat tree construction cannot fail")
}

/// Builds the infix tree of Figure 4(b): a separate root node labeled
/// `root_label` whose first child is the root of a balanced binary tree
/// whose in-order (infix) traversal spells `seq`.
///
/// For sequences of length `2^d - 1` the tree is complete of depth `d`;
/// other lengths yield an almost-complete tree ("it is clear that almost
/// complete infix trees can be created for sequences of arbitrary length").
pub fn infix_tree(root_label: LabelId, seq: &[LabelId]) -> BinaryTree {
    let n = seq.len();
    let mut labels = Vec::with_capacity(n + 1);
    let mut first = Vec::with_capacity(n + 1);
    let mut second = Vec::with_capacity(n + 1);
    labels.push(root_label);
    first.push(if n == 0 { NONE } else { 1 });
    second.push(NONE);

    // Allocate nodes in preorder recursively: mid, left half, right half.
    fn build(
        seq: &[LabelId],
        lo: usize,
        hi: usize,
        labels: &mut Vec<LabelId>,
        first: &mut Vec<u32>,
        second: &mut Vec<u32>,
    ) -> u32 {
        debug_assert!(lo < hi);
        let mid = lo + (hi - lo) / 2;
        let id = labels.len() as u32;
        labels.push(seq[mid]);
        first.push(NONE);
        second.push(NONE);
        if lo < mid {
            let l = build(seq, lo, mid, labels, first, second);
            first[id as usize] = l;
        }
        if mid + 1 < hi {
            let r = build(seq, mid + 1, hi, labels, first, second);
            second[id as usize] = r;
        }
        id
    }

    if n > 0 {
        build(seq, 0, n, &mut labels, &mut first, &mut second);
    }
    BinaryTree::from_parts(labels, first, second).expect("infix tree construction cannot fail")
}

/// Reads the sequence back from an infix tree (in-order traversal of the
/// subtree below the separate root). Inverse of [`infix_tree`].
pub fn infix_sequence(tree: &BinaryTree) -> Vec<LabelId> {
    let mut out = Vec::with_capacity(tree.len().saturating_sub(1));
    let Some(start) = tree.first_child(tree.root()) else {
        return out;
    };
    // Iterative in-order traversal.
    let mut stack: Vec<NodeId> = Vec::new();
    let mut cur = Some(start);
    while cur.is_some() || !stack.is_empty() {
        while let Some(v) = cur {
            stack.push(v);
            cur = tree.first_child(v);
        }
        let v = stack.pop().expect("stack nonempty");
        out.push(tree.label(v));
        cur = tree.second_child(v);
    }
    out
}

/// Reads the sequence back from a flat tree (the root's unranked children).
pub fn flat_sequence(tree: &BinaryTree) -> Vec<LabelId> {
    tree.unranked_children(tree.root())
        .into_iter()
        .map(|c| tree.label(c))
        .collect()
}

/// Depth of the binary tree (number of nodes on the longest root-to-leaf
/// path through `FirstChild`/`SecondChild` edges).
pub fn binary_depth(tree: &BinaryTree) -> usize {
    // Iterative postorder with explicit stack to avoid recursion limits on
    // right-deep flat trees.
    if tree.is_empty() {
        return 0;
    }
    let n = tree.len();
    let mut depth = vec![0usize; n];
    let mut max = 0;
    // Nodes in reverse preorder: children come after parents in preorder,
    // so a reverse sweep sees children first.
    for v in (0..n).rev() {
        let d1 = tree
            .first_child(NodeId(v as u32))
            .map_or(0, |c| depth[c.ix()]);
        let d2 = tree
            .second_child(NodeId(v as u32))
            .map_or(0, |c| depth[c.ix()]);
        depth[v] = 1 + d1.max(d2);
        max = max.max(depth[v]);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_of(s: &str) -> Vec<LabelId> {
        s.bytes().map(LabelId::from_char_byte).collect()
    }

    #[test]
    fn figure_4_flat() {
        let root = LabelId(300);
        let t = flat_tree(root, &seq_of("ACGTACG"));
        assert_eq!(t.len(), 8);
        assert_eq!(
            flat_sequence(&t)
                .iter()
                .map(|l| l.text_byte().unwrap() as char)
                .collect::<String>(),
            "ACGTACG"
        );
        // Flat tree is right-deep: binary depth = len.
        assert_eq!(binary_depth(&t), 8);
    }

    #[test]
    fn figure_4_infix() {
        let root = LabelId(300);
        let t = infix_tree(root, &seq_of("ACGTACG"));
        assert_eq!(t.len(), 8);
        // Complete infix tree over 2^3-1 symbols: depth 3 below the root.
        assert_eq!(binary_depth(&t), 4);
        // Root of infix part holds the middle symbol 'T'.
        let mid = t.first_child(t.root()).unwrap();
        assert_eq!(t.label(mid).text_byte(), Some(b'T'));
        assert_eq!(
            infix_sequence(&t)
                .iter()
                .map(|l| l.text_byte().unwrap() as char)
                .collect::<String>(),
            "ACGTACG"
        );
    }

    #[test]
    fn infix_roundtrip_arbitrary_lengths() {
        let root = LabelId(300);
        for n in 0..40usize {
            let seq: Vec<LabelId> = (0..n).map(|i| LabelId((i % 4) as u16)).collect();
            let t = infix_tree(root, &seq);
            assert_eq!(t.len(), n + 1);
            assert_eq!(infix_sequence(&t), seq, "length {n}");
            // Almost-complete: depth ≤ ceil(log2(n+1)) + 1.
            let bound = (usize::BITS - n.leading_zeros()) as usize + 1;
            assert!(binary_depth(&t) <= bound + 1, "length {n}");
        }
    }

    #[test]
    fn empty_sequences() {
        let root = LabelId(300);
        let t = flat_tree(root, &[]);
        assert_eq!(t.len(), 1);
        let t = infix_tree(root, &[]);
        assert_eq!(t.len(), 1);
        assert!(infix_sequence(&t).is_empty());
    }
}
