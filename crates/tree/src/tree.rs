//! The in-memory binary tree and its builder.
//!
//! Nodes are stored in **preorder** (node `v` precedes its first-child
//! subtree, which precedes its second-child subtree). For trees built from
//! XML documents this coincides with document order, and it is exactly the
//! record order of the `.arb` storage model (paper Section 5), so node ids
//! are stable across the in-memory and on-disk representations.

use crate::label::LabelId;

/// Sentinel for "no node".
pub const NONE: u32 = u32::MAX;

/// A node identifier: the preorder index of the node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Preorder index as `usize`.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Everything the tree automata need to know about a node locally: its
/// label and which children exist — the automaton alphabet Σ_A of paper
/// Section 4 ("the alphabet is the set of subsets of the schema σ").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeInfo {
    /// Node label.
    pub label: LabelId,
    /// Whether the node has a first (left) child — in the unranked view,
    /// whether it has any child.
    pub has_first: bool,
    /// Whether the node has a second (right) child — in the unranked view,
    /// whether it has a next sibling.
    pub has_second: bool,
    /// Whether the node is the tree root.
    pub is_root: bool,
}

impl NodeInfo {
    /// Compact key identifying this symbol: `label * 8 + flags`.
    /// Used to key per-symbol caches in the lazy automata.
    #[inline]
    pub fn symbol_key(&self) -> u32 {
        ((self.label.0 as u32) << 3)
            | (self.has_first as u32)
            | ((self.has_second as u32) << 1)
            | ((self.is_root as u32) << 2)
    }
}

/// An immutable binary tree in preorder layout.
///
/// This is the model of paper Section 2.1: unary relations `Root`,
/// `HasFirstChild`, `HasSecondChild`, `Label[l]` and binary relations
/// `FirstChild`, `SecondChild` (a.k.a. `NextSibling`).
#[derive(Clone, Debug)]
pub struct BinaryTree {
    labels: Vec<LabelId>,
    first: Vec<u32>,
    second: Vec<u32>,
    /// Parent in the *binary* tree; `NONE` for the root.
    parent: Vec<u32>,
    /// True if this node is the *first* (left) child of its binary parent.
    is_first_child: Vec<bool>,
}

impl BinaryTree {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The root node (preorder index 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        debug_assert!(!self.is_empty());
        NodeId(0)
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> LabelId {
        self.labels[v.ix()]
    }

    /// First (left) child of `v`, if any.
    #[inline]
    pub fn first_child(&self, v: NodeId) -> Option<NodeId> {
        let c = self.first[v.ix()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Second (right) child of `v`, if any. In the unranked view this is
    /// the `NextSibling` relation.
    #[inline]
    pub fn second_child(&self, v: NodeId) -> Option<NodeId> {
        let c = self.second[v.ix()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Binary parent of `v` (the inverse of `FirstChild ∪ SecondChild`).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.ix()];
        (p != NONE).then_some(NodeId(p))
    }

    /// True if `v` is the first child of its binary parent.
    #[inline]
    pub fn is_first_child(&self, v: NodeId) -> bool {
        self.is_first_child[v.ix()]
    }

    /// `HasFirstChild` EDB relation.
    #[inline]
    pub fn has_first(&self, v: NodeId) -> bool {
        self.first[v.ix()] != NONE
    }

    /// `HasSecondChild` EDB relation.
    #[inline]
    pub fn has_second(&self, v: NodeId) -> bool {
        self.second[v.ix()] != NONE
    }

    /// `Root` EDB relation.
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        v.0 == 0
    }

    /// Leaf in the *binary* sense: `-HasFirstChild` — in the unranked view,
    /// a node without children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        !self.has_first(v)
    }

    /// `LastSibling` (= `-HasSecondChild`).
    #[inline]
    pub fn is_last_sibling(&self, v: NodeId) -> bool {
        !self.has_second(v)
    }

    /// Local node information (the automaton input symbol at `v`).
    #[inline]
    pub fn info(&self, v: NodeId) -> NodeInfo {
        NodeInfo {
            label: self.label(v),
            has_first: self.has_first(v),
            has_second: self.has_second(v),
            is_root: self.is_root(v),
        }
    }

    /// All node ids in preorder.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// The *unranked* parent of `v`: follow `invSecondChild*` (the sibling
    /// chain backwards) then one `invFirstChild` step.
    pub fn unranked_parent(&self, v: NodeId) -> Option<NodeId> {
        let mut cur = v;
        loop {
            let p = self.parent(cur)?;
            if self.is_first_child(cur) {
                return Some(p);
            }
            cur = p;
        }
    }

    /// The unranked children of `v`: the first child and its sibling chain.
    pub fn unranked_children(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.first_child(v);
        while let Some(c) = cur {
            out.push(c);
            cur = self.second_child(c);
        }
        out
    }

    /// Concatenated text of the character-node children of `v` (stops at
    /// non-character children only in the sense that those contribute
    /// nothing).
    pub fn text_of_children(&self, v: NodeId) -> String {
        let mut s = String::new();
        for c in self.unranked_children(v) {
            if let Some(b) = self.label(c).text_byte() {
                s.push(b as char);
            }
        }
        s
    }

    /// Builds a tree directly from parallel arrays. Mainly for tests and
    /// for reconstruction from storage; validates preorder layout.
    pub fn from_parts(
        labels: Vec<LabelId>,
        first: Vec<u32>,
        second: Vec<u32>,
    ) -> Result<Self, String> {
        let n = labels.len();
        if first.len() != n || second.len() != n {
            return Err("length mismatch".into());
        }
        let mut parent = vec![NONE; n];
        let mut is_first_child = vec![false; n];
        for v in 0..n {
            for (child, is_first) in [(first[v], true), (second[v], false)] {
                if child != NONE {
                    let c = child as usize;
                    if c >= n {
                        return Err(format!("child index {c} out of bounds"));
                    }
                    if parent[c] != NONE {
                        return Err(format!("node {c} has two parents"));
                    }
                    parent[c] = v as u32;
                    is_first_child[c] = is_first;
                }
            }
        }
        // Preorder check: first child must be v+1; second child must be
        // v + 1 + size(first subtree). We verify the weaker local property
        // that children come after their parent and node 0 is the root.
        for (v, &p) in parent.iter().enumerate() {
            if v == 0 {
                if p != NONE {
                    return Err("node 0 must be the root".into());
                }
            } else if p == NONE {
                return Err(format!("node {v} is unreachable"));
            } else if p as usize >= v {
                return Err(format!("node {v} precedes its parent"));
            }
        }
        Ok(Self {
            labels,
            first,
            second,
            parent,
            is_first_child,
        })
    }

    /// Raw preorder arrays `(labels, first, second)`.
    pub fn parts(&self) -> (&[LabelId], &[u32], &[u32]) {
        (&self.labels, &self.first, &self.second)
    }
}

/// Frame used by [`TreeBuilder`].
struct Frame {
    node: u32,
    last_child: u32,
}

/// Builds a [`BinaryTree`] from unranked document events, performing the
/// unranked→binary encoding of paper Figure 1 on the fly.
///
/// ```
/// use arb_tree::{TreeBuilder, LabelTable};
/// let mut labels = LabelTable::new();
/// let mut b = TreeBuilder::new();
/// let a = labels.intern("a").unwrap();
/// b.open(a);
/// b.open(a);
/// b.text(b"hi");
/// b.close();
/// b.close();
/// let t = b.finish().unwrap();
/// assert_eq!(t.len(), 4); // a, a, 'h', 'i'
/// ```
#[derive(Default)]
pub struct TreeBuilder {
    labels: Vec<LabelId>,
    first: Vec<u32>,
    second: Vec<u32>,
    stack: Vec<Frame>,
    roots_seen: u32,
    done_root: u32,
}

impl TreeBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            first: Vec::with_capacity(n),
            second: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    fn add_node(&mut self, label: LabelId) -> u32 {
        let id = self.labels.len() as u32;
        self.labels.push(label);
        self.first.push(NONE);
        self.second.push(NONE);
        match self.stack.last_mut() {
            Some(f) => {
                if f.last_child == NONE {
                    self.first[f.node as usize] = id;
                } else {
                    self.second[f.last_child as usize] = id;
                }
                f.last_child = id;
            }
            None => {
                self.roots_seen += 1;
                if self.roots_seen == 1 {
                    self.done_root = id;
                }
            }
        }
        id
    }

    /// Open an element node.
    pub fn open(&mut self, label: LabelId) {
        let id = self.add_node(label);
        self.stack.push(Frame {
            node: id,
            last_child: NONE,
        });
    }

    /// Close the current element node.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        self.stack.pop().expect("close() without open()");
    }

    /// Append text: one character node per byte (paper Section 2.1).
    pub fn text(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add_node(LabelId::from_char_byte(b));
        }
    }

    /// Append a single leaf node with the given label.
    pub fn leaf(&mut self, label: LabelId) {
        self.add_node(label);
    }

    /// Current unranked depth of the open-element stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Finish building. Fails if elements remain open or the document does
    /// not have exactly one root node.
    pub fn finish(self) -> Result<BinaryTree, String> {
        if !self.stack.is_empty() {
            return Err(format!("{} unclosed elements", self.stack.len()));
        }
        if self.roots_seen != 1 {
            return Err(format!(
                "document must have exactly one root node, found {}",
                self.roots_seen
            ));
        }
        BinaryTree::from_parts(self.labels, self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    /// Builds the unranked tree of paper Figure 1(a):
    /// v1(v2, v3(v5, v6), v4) and checks the binary encoding of Figure 1(b).
    #[test]
    fn figure_1_encoding() {
        let mut lt = LabelTable::new();
        let l: Vec<LabelId> = (1..=6)
            .map(|i| lt.intern(&format!("v{i}")).unwrap())
            .collect();
        let mut b = TreeBuilder::new();
        b.open(l[0]); // v1
        b.open(l[1]); // v2
        b.close();
        b.open(l[2]); // v3
        b.open(l[4]); // v5
        b.close();
        b.open(l[5]); // v6
        b.close();
        b.close();
        b.open(l[3]); // v4
        b.close();
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 6);
        let v1 = t.root();
        // Figure 1(b): v1's first child is v2; v2's second child is v3;
        // v3's first child is v5, second child v4; v5's second child is v6.
        let v2 = t.first_child(v1).unwrap();
        assert_eq!(t.label(v2), l[1]);
        assert!(t.second_child(v1).is_none());
        let v3 = t.second_child(v2).unwrap();
        assert_eq!(t.label(v3), l[2]);
        let v5 = t.first_child(v3).unwrap();
        assert_eq!(t.label(v5), l[4]);
        let v4 = t.second_child(v3).unwrap();
        assert_eq!(t.label(v4), l[3]);
        let v6 = t.second_child(v5).unwrap();
        assert_eq!(t.label(v6), l[5]);
        // Unranked views agree.
        assert_eq!(t.unranked_children(v1), vec![v2, v3, v4]);
        assert_eq!(t.unranked_parent(v6), Some(v3));
        assert_eq!(t.unranked_parent(v4), Some(v1));
        assert_eq!(t.unranked_parent(v1), None);
    }

    #[test]
    fn preorder_ids_follow_document_order() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut b = TreeBuilder::new();
        b.open(a);
        b.open(a);
        b.open(a);
        b.close();
        b.close();
        b.open(a);
        b.close();
        b.close();
        let t = b.finish().unwrap();
        // Document order: root=0, first child=1, grandchild=2, second child=3.
        assert_eq!(t.first_child(NodeId(0)), Some(NodeId(1)));
        assert_eq!(t.first_child(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.second_child(NodeId(1)), Some(NodeId(3)));
    }

    #[test]
    fn text_nodes_are_char_siblings() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut b = TreeBuilder::new();
        b.open(a);
        b.text(b"ACG");
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.text_of_children(t.root()), "ACG");
        let c1 = t.first_child(t.root()).unwrap();
        assert!(t.label(c1).is_text());
        let c2 = t.second_child(c1).unwrap();
        assert_eq!(t.label(c2).text_byte(), Some(b'C'));
    }

    #[test]
    fn builder_rejects_multiple_roots() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut b = TreeBuilder::new();
        b.open(a);
        b.close();
        b.open(a);
        b.close();
        assert!(b.finish().is_err());
    }

    #[test]
    fn builder_rejects_unclosed() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut b = TreeBuilder::new();
        b.open(a);
        assert!(b.finish().is_err());
    }

    #[test]
    fn from_parts_validates() {
        let l = LabelId(300);
        // Child precedes parent.
        assert!(BinaryTree::from_parts(vec![l, l], vec![NONE, 0], vec![NONE, NONE]).is_err());
        // Two parents.
        assert!(
            BinaryTree::from_parts(vec![l, l, l], vec![1, 1, NONE], vec![NONE, NONE, NONE])
                .is_err()
        );
        // Unreachable node.
        assert!(BinaryTree::from_parts(vec![l, l], vec![NONE, NONE], vec![NONE, NONE]).is_err());
        // Good single chain.
        assert!(BinaryTree::from_parts(vec![l, l], vec![1, NONE], vec![NONE, NONE]).is_ok());
    }

    #[test]
    fn info_symbol_keys_distinct() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a").unwrap();
        let mut keys = std::collections::HashSet::new();
        for has_first in [false, true] {
            for has_second in [false, true] {
                for is_root in [false, true] {
                    let info = NodeInfo {
                        label: a,
                        has_first,
                        has_second,
                        is_root,
                    };
                    assert!(keys.insert(info.symbol_key()));
                }
            }
        }
    }
}
