//! Compact sets of node ids (query results, per-predicate extents).

use crate::tree::NodeId;
use std::fmt;

/// A bit set over node ids `0..len`.
///
/// Used for query results (the set of selected nodes) and for the
/// per-predicate extents of the naive datalog evaluator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Empty set over a universe of `len` nodes.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert a node; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (w, b) = (v.ix() / 64, v.ix() % 64);
        debug_assert!(v.ix() < self.len);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Remove a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (w, b) = (v.ix() / 64, v.ix() % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        if v.ix() >= self.len {
            return false;
        }
        self.words[v.ix() / 64] & (1u64 << (v.ix() % 64)) != 0
    }

    /// Number of nodes in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no node is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics if universes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Panics if universes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterate node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Collect into a `Vec` of node ids.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|v| v.0)).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set sized to the maximum id + 1.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let len = ids.iter().map(|v| v.ix() + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(len);
        for v in ids {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(64)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(64)));
        assert_eq!(s.count(), 3);
        assert!(s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(128)));
        assert!(!s.contains(NodeId(4000)));
        assert!(s.remove(NodeId(64)));
        assert!(!s.remove(NodeId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = NodeSet::new(200);
        for i in [5u32, 1, 199, 64, 63] {
            s.insert(NodeId(i));
        }
        let v: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![1, 5, 63, 64, 199]);
    }

    #[test]
    fn set_ops() {
        let mut a = NodeSet::new(100);
        let mut b = NodeSet::new(100);
        a.insert(NodeId(1));
        a.insert(NodeId(2));
        b.insert(NodeId(2));
        b.insert(NodeId(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        a.intersect_with(&b);
        assert_eq!(a.to_vec(), vec![NodeId(2)]);
    }

    #[test]
    fn from_iterator() {
        let s: NodeSet = [NodeId(3), NodeId(7)].into_iter().collect();
        assert_eq!(s.universe(), 8);
        assert_eq!(s.count(), 2);
        let empty: NodeSet = std::iter::empty().collect();
        assert!(empty.is_empty());
    }
}
