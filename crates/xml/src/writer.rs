//! XML serialization: trees back to documents, optionally with query
//! results marked up.
//!
//! "As the default behavior of Arb, the entire XML document is returned
//! with selected nodes marked up in the usual XML fashion" (paper §6.3):
//! selected element nodes get an `arb:selected="true"` attribute, and
//! maximal runs of selected character nodes are wrapped in an
//! `<arb:selected>` element.

use arb_tree::{
    traverse::{doc_events, DocEvent},
    BinaryTree, LabelTable, NodeSet,
};
use std::io::{self, Write};

/// Escapes character data for element content.
pub fn escape_text(bytes: &[u8], out: &mut impl Write) -> io::Result<()> {
    for &b in bytes {
        match b {
            b'&' => out.write_all(b"&amp;")?,
            b'<' => out.write_all(b"&lt;")?,
            b'>' => out.write_all(b"&gt;")?,
            _ => out.write_all(&[b])?,
        }
    }
    Ok(())
}

fn escape_attr(s: &str, out: &mut impl Write) -> io::Result<()> {
    for &b in s.as_bytes() {
        match b {
            b'&' => out.write_all(b"&amp;")?,
            b'<' => out.write_all(b"&lt;")?,
            b'"' => out.write_all(b"&quot;")?,
            _ => out.write_all(&[b])?,
        }
    }
    Ok(())
}

/// Serializes a binary tree back to XML (no marking).
pub fn write_tree(tree: &BinaryTree, labels: &LabelTable, out: &mut impl Write) -> io::Result<()> {
    MarkedWriter::new(labels, None).write(tree, out)
}

/// Writer producing the document with an optional selected-node marking.
pub struct MarkedWriter<'a> {
    labels: &'a LabelTable,
    selected: Option<&'a NodeSet>,
}

impl<'a> MarkedWriter<'a> {
    /// A writer; pass `Some(set)` to mark those nodes.
    pub fn new(labels: &'a LabelTable, selected: Option<&'a NodeSet>) -> Self {
        MarkedWriter { labels, selected }
    }

    /// Serializes the tree.
    pub fn write(&self, tree: &BinaryTree, out: &mut impl Write) -> io::Result<()> {
        let mut char_run_selected = false;
        for ev in doc_events(tree) {
            match ev {
                DocEvent::Open(v, label) => {
                    if char_run_selected {
                        out.write_all(b"</arb:selected>")?;
                        char_run_selected = false;
                    }
                    out.write_all(b"<")?;
                    out.write_all(self.labels.name(label).as_bytes())?;
                    if self.selected.is_some_and(|s| s.contains(v)) {
                        out.write_all(b" arb:selected=\"true\"")?;
                    }
                    out.write_all(b">")?;
                }
                DocEvent::Close(_, label) => {
                    if char_run_selected {
                        out.write_all(b"</arb:selected>")?;
                        char_run_selected = false;
                    }
                    out.write_all(b"</")?;
                    out.write_all(self.labels.name(label).as_bytes())?;
                    out.write_all(b">")?;
                }
                DocEvent::Char(v, b) => {
                    let sel = self.selected.is_some_and(|s| s.contains(v));
                    if sel != char_run_selected {
                        if sel {
                            out.write_all(b"<arb:selected>")?;
                        } else {
                            out.write_all(b"</arb:selected>")?;
                        }
                        char_run_selected = sel;
                    }
                    escape_text(&[b], out)?;
                }
            }
        }
        Ok(())
    }
}

/// Serializes a tree to a `String` (convenience).
pub fn tree_to_string(tree: &BinaryTree, labels: &LabelTable) -> String {
    let mut out = Vec::new();
    write_tree(tree, labels, &mut out).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("writer produces UTF-8")
}

/// Convenience used by doc examples: escapes an attribute value.
pub fn attr_to_string(s: &str) -> String {
    let mut out = Vec::new();
    escape_attr(s, &mut out).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("escaped output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::str_to_tree;
    use arb_tree::NodeId;

    #[test]
    fn roundtrip_simple() {
        let mut lt = LabelTable::new();
        let t = str_to_tree("<a><b>x&amp;y</b><c/></a>", &mut lt).unwrap();
        let s = tree_to_string(&t, &lt);
        assert_eq!(s, "<a><b>x&amp;y</b><c></c></a>");
        // Reparse gives the same tree.
        let mut lt2 = LabelTable::new();
        let t2 = str_to_tree(&s, &mut lt2).unwrap();
        assert_eq!(t.len(), t2.len());
    }

    #[test]
    fn marking_elements_and_chars() {
        let mut lt = LabelTable::new();
        let t = str_to_tree("<a><b>xy</b></a>", &mut lt).unwrap();
        // Nodes: 0=a, 1=b, 2='x', 3='y'. Select b and 'y'.
        let mut sel = NodeSet::new(t.len());
        sel.insert(NodeId(1));
        sel.insert(NodeId(3));
        let mut out = Vec::new();
        MarkedWriter::new(&lt, Some(&sel))
            .write(&t, &mut out)
            .unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<a><b arb:selected=\"true\">x<arb:selected>y</arb:selected></b></a>"
        );
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(attr_to_string(r#"a"b<c&d"#), "a&quot;b&lt;c&amp;d");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::str_to_tree;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary ASCII text content survives write → parse → write.
        #[test]
        fn text_escaping_roundtrip(text in "[ -~]{0,40}") {
            let mut lt = LabelTable::new();
            let t = lt.intern("t").expect("label");
            let mut b = arb_tree::TreeBuilder::new();
            b.open(t);
            b.text(text.as_bytes());
            b.close();
            let tree = b.finish().expect("balanced");
            let xml = tree_to_string(&tree, &lt);
            let mut lt2 = LabelTable::new();
            let tree2 = str_to_tree(&xml, &mut lt2).expect("reparse");
            prop_assert_eq!(tree2.text_of_children(tree2.root()), text);
        }

        /// Attribute escaping is reversible through the parser.
        #[test]
        fn attr_escaping_roundtrip(value in "[ -~]{0,30}") {
            let escaped = attr_to_string(&value);
            let xml = format!("<a k=\"{escaped}\"/>");
            let mut p = crate::XmlParser::new(xml.as_bytes());
            match p.next_event().expect("parse") {
                crate::XmlEvent::StartTag { attrs, .. } => {
                    prop_assert_eq!(&attrs[0].1, &value);
                }
                other => prop_assert!(false, "unexpected event {:?}", other),
            }
        }
    }
}
