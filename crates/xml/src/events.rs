//! SAX-style XML events.

/// A pull-parser event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An element start tag (self-closing tags produce a matching
    /// [`XmlEvent::EndTag`] immediately after).
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order, entity-decoded.
        attrs: Vec<(String, String)>,
    },
    /// An element end tag.
    EndTag {
        /// Element name.
        name: String,
    },
    /// Character data (entity-decoded bytes; consecutive runs may be
    /// split across events).
    Text(Vec<u8>),
    /// End of document.
    Eof,
}
