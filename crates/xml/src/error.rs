//! XML error type with source position.

use std::fmt;

/// A parse or well-formedness error, with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl XmlError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        XmlError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for XmlError {}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::new(format!("I/O error: {e}"), 0, 0)
    }
}
