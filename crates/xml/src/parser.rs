//! The streaming pull parser.

use crate::error::XmlError;
use crate::events::XmlEvent;
use std::io::BufRead;

/// Parser configuration.
#[derive(Debug, Clone, Default)]
pub struct XmlConfig {
    /// Drop text runs consisting solely of whitespace (useful for
    /// pretty-printed documents whose indentation is not data).
    pub trim_whitespace_text: bool,
    /// When building trees, represent attributes as `@name` child nodes
    /// (off by default: the paper's documents "contain no other kinds of
    /// nodes" than elements and characters).
    pub attributes_as_nodes: bool,
}

/// A streaming (SAX-style pull) XML parser over any `BufRead`.
///
/// State is O(element depth): just the open-tag stack for well-formedness
/// checking — the property that lets `.arb` database creation stream
/// arbitrarily large documents (paper Section 5).
pub struct XmlParser<R: BufRead> {
    input: R,
    config: XmlConfig,
    line: usize,
    col: usize,
    /// Single-byte lookahead.
    peeked: Option<u8>,
    /// Open element names, for well-formedness.
    stack: Vec<String>,
    /// Pending EndTag for a self-closed element.
    pending_end: Option<String>,
    seen_root: bool,
    done: bool,
}

impl<R: BufRead> XmlParser<R> {
    /// Parser with default configuration.
    pub fn new(input: R) -> Self {
        Self::with_config(input, XmlConfig::default())
    }

    /// Parser with explicit configuration.
    pub fn with_config(input: R, config: XmlConfig) -> Self {
        XmlParser {
            input,
            config,
            line: 1,
            col: 1,
            peeked: None,
            stack: Vec::new(),
            pending_end: None,
            seen_root: false,
            done: false,
        }
    }

    /// Builds an error at the current position.
    pub fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(message, self.line, self.col)
    }

    /// Current element depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn read_byte(&mut self) -> Result<Option<u8>, XmlError> {
        if let Some(b) = self.peeked.take() {
            return Ok(Some(b));
        }
        let mut buf = [0u8; 1];
        let n = loop {
            match self.input.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        };
        if n == 0 {
            return Ok(None);
        }
        if buf[0] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Ok(Some(buf[0]))
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, XmlError> {
        if self.peeked.is_none() {
            self.peeked = self.read_byte()?;
        }
        Ok(self.peeked)
    }

    fn expect_byte(&mut self, what: &str) -> Result<u8, XmlError> {
        self.read_byte()?
            .ok_or_else(|| self.error(format!("unexpected end of input, expected {what}")))
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.read_byte()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        while let Some(b) = self.peek_byte()? {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if ok {
                name.push(self.read_byte()?.expect("peeked") as char);
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.error("expected a name"));
        }
        Ok(name)
    }

    /// Decodes an entity reference after the `&` has been consumed.
    fn read_entity(&mut self) -> Result<Vec<u8>, XmlError> {
        let mut ent = String::new();
        loop {
            match self.expect_byte("';' ending entity")? {
                b';' => break,
                b if ent.len() > 16 => {
                    return Err(self.error(format!("entity too long near {:?}", b as char)))
                }
                b => ent.push(b as char),
            }
        }
        let decoded: String = match ent.as_str() {
            "amp" => "&".into(),
            "lt" => "<".into(),
            "gt" => ">".into(),
            "apos" => "'".into(),
            "quot" => "\"".into(),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| self.error(format!("bad character reference &{ent};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.error(format!("invalid code point &{ent};")))?
                    .to_string()
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .map_err(|_| self.error(format!("bad character reference &{ent};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.error(format!("invalid code point &{ent};")))?
                    .to_string()
            }
            _ => return Err(self.error(format!("unknown entity &{ent};"))),
        };
        Ok(decoded.into_bytes())
    }

    /// Skips until the terminator byte sequence has been read.
    fn skip_until(&mut self, terminator: &[u8], what: &str) -> Result<(), XmlError> {
        let mut matched = 0;
        loop {
            let b = self.expect_byte(what)?;
            if b == terminator[matched] {
                matched += 1;
                if matched == terminator.len() {
                    return Ok(());
                }
            } else if b == terminator[0] {
                matched = 1;
            } else {
                matched = 0;
            }
        }
    }

    /// Reads an attribute value (quoted, entity-decoded).
    fn read_attr_value(&mut self) -> Result<String, XmlError> {
        self.skip_ws()?;
        let quote = self.expect_byte("attribute quote")?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.error("attribute value must be quoted"));
        }
        let mut out: Vec<u8> = Vec::new();
        loop {
            let b = self.expect_byte("closing quote")?;
            if b == quote {
                break;
            }
            if b == b'&' {
                out.extend(self.read_entity()?);
            } else {
                out.push(b);
            }
        }
        String::from_utf8(out).map_err(|_| self.error("attribute value is not UTF-8"))
    }

    /// Parses the inside of a `<...>` construct, `<` already consumed.
    fn read_markup(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        match self.peek_byte()? {
            Some(b'?') => {
                // XML declaration / processing instruction: skip.
                self.read_byte()?;
                self.skip_until(b"?>", "'?>'")?;
                Ok(None)
            }
            Some(b'!') => {
                self.read_byte()?;
                match self.peek_byte()? {
                    Some(b'-') => {
                        self.read_byte()?;
                        if self.expect_byte("comment")? != b'-' {
                            return Err(self.error("malformed comment"));
                        }
                        self.skip_until(b"-->", "'-->'")?;
                        Ok(None)
                    }
                    Some(b'[') => {
                        // CDATA section: verify the keyword, then emit text.
                        for expected in *b"[CDATA[" {
                            if self.expect_byte("CDATA")? != expected {
                                return Err(self.error("malformed CDATA section"));
                            }
                        }
                        let mut out = Vec::new();
                        // Scan for ]]> while collecting bytes.
                        let mut tail = [0u8; 2];
                        let mut have = 0usize;
                        loop {
                            let b = self.expect_byte("']]>'")?;
                            if have == 2 && tail[0] == b']' && tail[1] == b']' && b == b'>' {
                                break;
                            }
                            if have == 2 {
                                out.push(tail[0]);
                                tail[0] = tail[1];
                                tail[1] = b;
                            } else {
                                tail[have] = b;
                                have += 1;
                            }
                        }
                        if self.stack.is_empty() {
                            return Err(self.error("CDATA outside of root element"));
                        }
                        Ok(Some(XmlEvent::Text(out)))
                    }
                    _ => {
                        // DOCTYPE etc.: skip to matching '>'.
                        let mut depth = 1;
                        loop {
                            match self.expect_byte("'>'")? {
                                b'<' => depth += 1,
                                b'>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        Ok(None)
                    }
                }
            }
            Some(b'/') => {
                self.read_byte()?;
                let name = self.read_name()?;
                self.skip_ws()?;
                if self.expect_byte("'>'")? != b'>' {
                    return Err(self.error("malformed end tag"));
                }
                match self.stack.pop() {
                    Some(open) if open == name => Ok(Some(XmlEvent::EndTag { name })),
                    Some(open) => {
                        Err(self.error(format!("mismatched end tag </{name}>, expected </{open}>")))
                    }
                    None => Err(self.error(format!("unexpected end tag </{name}>"))),
                }
            }
            _ => {
                let name = self.read_name()?;
                let mut attrs = Vec::new();
                loop {
                    self.skip_ws()?;
                    match self.peek_byte()? {
                        Some(b'>') => {
                            self.read_byte()?;
                            if self.seen_root && self.stack.is_empty() {
                                return Err(self.error("multiple root elements"));
                            }
                            self.seen_root = true;
                            self.stack.push(name.clone());
                            return Ok(Some(XmlEvent::StartTag { name, attrs }));
                        }
                        Some(b'/') => {
                            self.read_byte()?;
                            if self.expect_byte("'>'")? != b'>' {
                                return Err(self.error("malformed self-closing tag"));
                            }
                            if self.seen_root && self.stack.is_empty() {
                                return Err(self.error("multiple root elements"));
                            }
                            self.seen_root = true;
                            self.pending_end = Some(name.clone());
                            return Ok(Some(XmlEvent::StartTag { name, attrs }));
                        }
                        Some(_) => {
                            let key = self.read_name()?;
                            self.skip_ws()?;
                            if self.expect_byte("'='")? != b'=' {
                                return Err(self.error("expected '=' in attribute"));
                            }
                            let value = self.read_attr_value()?;
                            attrs.push((key, value));
                        }
                        None => return Err(self.error("unexpected end of input in tag")),
                    }
                }
            }
        }
    }

    /// Returns the next event. After [`XmlEvent::Eof`], keeps returning it.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(XmlEvent::EndTag { name });
        }
        if self.done {
            return Ok(XmlEvent::Eof);
        }
        loop {
            match self.peek_byte()? {
                None => {
                    if !self.stack.is_empty() {
                        return Err(self.error(format!(
                            "unexpected end of input: <{}> still open",
                            self.stack.last().expect("nonempty")
                        )));
                    }
                    if !self.seen_root {
                        return Err(self.error("empty document"));
                    }
                    self.done = true;
                    return Ok(XmlEvent::Eof);
                }
                Some(b'<') => {
                    self.read_byte()?;
                    if let Some(ev) = self.read_markup()? {
                        return Ok(ev);
                    }
                }
                Some(_) => {
                    // Character data until the next '<'.
                    let mut out: Vec<u8> = Vec::new();
                    let mut all_ws = true;
                    while let Some(b) = self.peek_byte()? {
                        if b == b'<' {
                            break;
                        }
                        self.read_byte()?;
                        if b == b'&' {
                            let bytes = self.read_entity()?;
                            all_ws = all_ws && bytes.iter().all(u8::is_ascii_whitespace);
                            out.extend(bytes);
                        } else {
                            all_ws = all_ws && b.is_ascii_whitespace();
                            out.push(b);
                        }
                    }
                    if self.stack.is_empty() {
                        if all_ws {
                            continue; // whitespace outside the root is fine
                        }
                        return Err(self.error("character data outside of root element"));
                    }
                    if all_ws && self.config.trim_whitespace_text {
                        continue;
                    }
                    return Ok(XmlEvent::Text(out));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<XmlEvent> {
        let mut p = XmlParser::new(src.as_bytes());
        let mut out = Vec::new();
        loop {
            let e = p.next_event().unwrap_or_else(|e| panic!("{e}"));
            let eof = e == XmlEvent::Eof;
            out.push(e);
            if eof {
                break;
            }
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartTag {
            name: name.into(),
            attrs: vec![],
        }
    }
    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndTag { name: name.into() }
    }

    #[test]
    fn basic_nesting_and_self_close() {
        assert_eq!(
            events("<a><b/></a>"),
            vec![start("a"), start("b"), end("b"), end("a"), XmlEvent::Eof]
        );
    }

    #[test]
    fn text_and_entities() {
        let evs = events("<a>x &amp; y &#65;&#x42;</a>");
        assert_eq!(evs[1], XmlEvent::Text(b"x & y AB".to_vec()));
    }

    #[test]
    fn attributes() {
        let evs = events(r#"<a one="1" two='&lt;3'/>"#);
        assert_eq!(
            evs[0],
            XmlEvent::StartTag {
                name: "a".into(),
                attrs: vec![("one".into(), "1".into()), ("two".into(), "<3".into())],
            }
        );
    }

    #[test]
    fn prolog_comments_doctype_cdata() {
        let evs = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n\
             <!-- hi --><a><![CDATA[<raw>&]]></a>",
        );
        assert_eq!(
            evs,
            vec![
                start("a"),
                XmlEvent::Text(b"<raw>&".to_vec()),
                end("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn well_formedness_errors() {
        let check = |src: &str| {
            let mut p = XmlParser::new(src.as_bytes());
            loop {
                match p.next_event() {
                    Err(_) => return true,
                    Ok(XmlEvent::Eof) => return false,
                    Ok(_) => {}
                }
            }
        };
        assert!(check("<a><b></a></b>")); // mismatched
        assert!(check("<a>")); // unclosed
        assert!(check("<a/><b/>")); // two roots
        assert!(check("text")); // no root
        assert!(check("<a>&bogus;</a>")); // unknown entity
        assert!(check("")); // empty
        assert!(!check("<a>ok</a>"));
    }

    #[test]
    fn error_positions() {
        let mut p = XmlParser::new("<a>\n  <b></c>\n</a>".as_bytes());
        let err = loop {
            match p.next_event() {
                Err(e) => break e,
                Ok(XmlEvent::Eof) => panic!("expected error"),
                Ok(_) => {}
            }
        };
        assert_eq!(err.line, 2);
    }

    #[test]
    fn eof_is_sticky() {
        let mut p = XmlParser::new("<a/>".as_bytes());
        while p.next_event().unwrap() != XmlEvent::Eof {}
        assert_eq!(p.next_event().unwrap(), XmlEvent::Eof);
    }
}
