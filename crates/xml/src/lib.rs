//! # arb-xml
//!
//! A from-scratch streaming XML substrate for Arb-rs: a SAX-style pull
//! parser ([`parser::XmlParser`]), an escaping writer ([`writer`]), and
//! bridges to the binary tree model ([`to_tree`], [`writer::write_tree`]).
//!
//! The parser supports the XML subset the paper's databases exercise —
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, XML declarations, DOCTYPE (skipped), and the
//! predefined + numeric character entities. It is a streaming parser: it
//! reads from any `BufRead` with O(depth) state, which is what the
//! two-pass `.arb` database creation of paper Section 5 requires.

pub mod error;
pub mod events;
pub mod parser;
pub mod writer;

pub use error::XmlError;
pub use events::XmlEvent;
pub use parser::{XmlConfig, XmlParser};
pub use writer::{escape_text, write_tree, MarkedWriter};

// Re-exported so `str_to_tree` callers can name their label table
// without depending on `arb-tree` directly.
pub use arb_tree::LabelTable;

use arb_tree::{BinaryTree, TreeBuilder};
use std::io::BufRead;

/// Parses an XML document into its binary tree (paper Section 2.1):
/// elements become labeled nodes, text becomes one character node per
/// byte. Attributes are handled per [`XmlConfig::attributes_as_nodes`].
/// Tag names are interned into `labels`.
pub fn to_tree<R: BufRead>(
    reader: R,
    config: &XmlConfig,
    labels: &mut LabelTable,
) -> Result<BinaryTree, XmlError> {
    let mut parser = XmlParser::with_config(reader, config.clone());
    let mut builder = TreeBuilder::new();
    loop {
        match parser.next_event()? {
            XmlEvent::StartTag { name, attrs } => {
                let l = labels
                    .intern(&name)
                    .map_err(|e| parser.error(format!("label error: {e}")))?;
                builder.open(l);
                if config.attributes_as_nodes {
                    for (k, v) in &attrs {
                        let al = labels
                            .intern(&format!("@{k}"))
                            .map_err(|e| parser.error(format!("label error: {e}")))?;
                        builder.open(al);
                        builder.text(v.as_bytes());
                        builder.close();
                    }
                }
            }
            XmlEvent::EndTag { .. } => builder.close(),
            XmlEvent::Text(bytes) => builder.text(&bytes),
            XmlEvent::Eof => break,
        }
    }
    builder
        .finish()
        .map_err(|e| XmlError::new(format!("document structure: {e}"), 0, 0))
}

/// Parses an XML string into a tree (convenience for tests and examples).
pub fn str_to_tree(src: &str, labels: &mut LabelTable) -> Result<BinaryTree, XmlError> {
    to_tree(src.as_bytes(), &XmlConfig::default(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_document() {
        // The three-node document of paper Example 4.5.
        let mut lt = LabelTable::new();
        let t = str_to_tree("<a> <a> <a/> </a> </a>", &mut lt).unwrap();
        // Whitespace between tags is kept as char nodes by default...
        assert!(t.len() > 3);
        // ...and dropped with trim enabled.
        let cfg = XmlConfig {
            trim_whitespace_text: true,
            attributes_as_nodes: false,
        };
        let mut lt = LabelTable::new();
        let t = to_tree("<a> <a> <a/> </a> </a>".as_bytes(), &cfg, &mut lt).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(lt.name(t.label(t.root())), "a");
    }

    #[test]
    fn attributes_as_nodes_mode() {
        let cfg = XmlConfig {
            attributes_as_nodes: true,
            trim_whitespace_text: true,
        };
        let mut lt = LabelTable::new();
        let t = to_tree(r#"<a x="1" y="two"/>"#.as_bytes(), &cfg, &mut lt).unwrap();
        // a, @x, '1', @y, 't','w','o'
        assert_eq!(t.len(), 7);
        let root = t.root();
        let kids = t.unranked_children(root);
        assert_eq!(lt.name(t.label(kids[0])), "@x");
        assert_eq!(t.text_of_children(kids[1]), "two");
    }

    #[test]
    fn text_becomes_char_nodes() {
        let mut lt = LabelTable::new();
        let t = str_to_tree("<g>ACGT</g>", &mut lt).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.text_of_children(t.root()), "ACGT");
    }
}
