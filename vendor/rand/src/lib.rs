//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses: `StdRng`, `SeedableRng::{seed_from_u64, from_seed}`,
//! and `Rng::{gen_range, gen_bool}` over integer ranges.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched (see `vendor/README.md`). The generator is
//! xoshiro256** seeded through SplitMix64 — high-quality and deterministic,
//! but the streams differ numerically from the real `StdRng` (ChaCha12).
//! Workspace code only relies on determinism for a fixed seed, never on
//! matching upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// An RNG that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types `Rng::gen_range` can sample uniformly. The single blanket
/// `SampleRange` impl below ties the range's element type to the result
/// type, which is what lets integer-literal ranges (`0..4`) infer their
/// type from the call site exactly like the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                assert!(span > 0, "cannot sample empty range");
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53 uniform mantissa bits, the standard double-precision trick.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Guard against the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_fixed_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_produce_distinct_streams() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_ne!(va, vb);
        }

        #[test]
        fn gen_range_in_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: usize = rng.gen_range(3..17);
                assert!((3..17).contains(&x));
                let y: i32 = rng.gen_range(-5..=5);
                assert!((-5..=5).contains(&y));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..100 {
                assert!(!rng.gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }
}
