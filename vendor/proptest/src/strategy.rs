//! The [`Strategy`] trait and its implementations for ranges, tuples,
//! mapped strategies, and string-literal patterns.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: `generate` draws a value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start
                    .wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain; obtain via [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// String-literal strategies: a small regex subset.
// ---------------------------------------------------------------------

/// One pattern atom: a set of candidate chars and a repetition count.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset the workspace's tests use: a sequence of
/// atoms, where an atom is a literal char or a `[...]` class (chars,
/// `a-z` ranges, and `\n`/`\t`/`\r`/`\\`/`\]`/`\-` escapes), optionally
/// followed by `{n}` or `{m,n}`. Anything fancier is a loud failure so a
/// future test can't silently get unexpected inputs.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let item = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match item {
                        ']' => break,
                        '\\' => set.push(unescape(chars.next(), pattern)),
                        _ => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = match chars.next() {
                                    Some('\\') => unescape(chars.next(), pattern),
                                    Some(']') | None => {
                                        panic!("dangling '-' in class in {pattern:?}")
                                    }
                                    Some(h) => h,
                                };
                                assert!(item <= hi, "reversed range in {pattern:?}");
                                set.extend(item..=hi);
                            } else {
                                set.push(item);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                set
            }
            '\\' => vec![unescape(chars.next(), pattern)],
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex construct {c:?} in {pattern:?}")
            }
            _ => vec![c],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                ),
                None => {
                    let n = spec
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "reversed repeat bounds in {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(c @ ('\\' | ']' | '-' | '[' | '{' | '}')) => c,
        other => panic!("unsupported escape {other:?} in {pattern:?}"),
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
