//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses. The build container has no crates.io access (see
//! `vendor/README.md`), so this crate reimplements just what the test
//! suites need:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for integer
//!   ranges, tuples, and string-literal patterns (a small regex subset:
//!   one or more `[class]{m,n}` atoms),
//! * [`collection::vec`] with `Range`/`RangeInclusive`/exact sizes,
//! * [`strategy::any`] for primitive integers and `bool`,
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! **No shrinking**: a failing case reports its case index and the
//! deterministic per-test seed instead of a minimized input. Case inputs
//! are a pure function of (test path, case index, `ARB_PROPTEST_SEED`),
//! so every failure is reproducible by rerunning the test.
//!
//! Case-count resolution honors two environment variables:
//! `ARB_PROPTEST_CASES` (or `PROPTEST_CASES`) overrides the configured
//! count exactly — raise it for deep overnight runs, lower it for smoke
//! runs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let strategies = ($($strat,)+);
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (rerun reproduces it; \
                         ARB_PROPTEST_SEED was {})",
                        test_path,
                        case,
                        cases,
                        $crate::test_runner::base_seed(),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple-of-ranges strategies stay in bounds.
        #[test]
        fn ranges_in_bounds((a, b) in (0..7u8, 3..=5usize)) {
            prop_assert!(a < 7);
            prop_assert!((3..=5).contains(&b));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0..10u32, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn string_pattern_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn prop_map_applies(x in (0..5u32).prop_map(|v| v * 10)) {
            prop_assert!(x % 10 == 0 && x < 50);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0..1000u32, 0..50);
        let a = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        let b = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        let c = Strategy::generate(&strat, &mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct cases should give distinct inputs");
    }

    #[test]
    fn escaped_class_chars() {
        let strat = "[ -~\\n]{0,80}";
        let mut rng = TestRng::for_case("esc", 0);
        for _ in 0..50 {
            let s: String = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }
}
