//! Deterministic test-case RNG and run configuration.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Run configuration; only `cases` is implemented.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: `ARB_PROPTEST_CASES` (or
    /// `PROPTEST_CASES`) overrides the configured value when set, so CI
    /// can cap cost and overnight runs can go deep.
    pub fn resolved_cases(&self) -> u32 {
        for var in ["ARB_PROPTEST_CASES", "PROPTEST_CASES"] {
            if let Ok(v) = std::env::var(var) {
                // A set-but-unparsable override is a typo in a deep-run
                // invocation; running the shallow default while reporting
                // green would be worse than failing loudly.
                match v.trim().parse::<u32>() {
                    Ok(n) => return n.max(1),
                    Err(_) => panic!("{var}={v:?} is not a case count"),
                }
            }
        }
        self.cases.max(1)
    }
}

/// The global seed all per-case seeds derive from (`ARB_PROPTEST_SEED`,
/// default 0). Changing it explores a different deterministic input set.
pub fn base_seed() -> u64 {
    std::env::var("ARB_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// Per-case random source: a pure function of (test path, case index,
/// [`base_seed`]), so failures reproduce without recording anything.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path keeps unrelated tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ base_seed() ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
