//! Minimal, dependency-free stand-in for the subset of `crossbeam` this
//! workspace uses: `crossbeam::thread::scope` with `Scope::spawn`, backed
//! by `std::thread::scope` (stable since Rust 1.63). See `vendor/README.md`
//! for why crates.io dependencies are vendored.

pub mod thread {
    /// Scoped-thread handle mirroring `crossbeam::thread::Scope`: spawn
    /// closures receive `&Scope` so they can spawn nested scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which borrowing-from-the-stack threads can
    /// be spawned; returns once all of them have finished.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates out of
    /// `std::thread::scope` directly instead of being returned as `Err`;
    /// joined-and-unwrapped children (the only pattern in this workspace)
    /// behave identically.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_sum_over_borrowed_slice() {
            let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(3)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 36);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let n = super::scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}
