//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace's benches use (see `vendor/README.md` for why crates.io
//! dependencies are vendored). It is a real harness, not a no-op: each
//! benchmark is warmed up, timed over `sample_size` samples, and the
//! median/min/max per-iteration times are printed. It does not emit
//! criterion's HTML reports or statistical regression analysis.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation, reported as elements (or bytes) per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A parameterized benchmark name, e.g. `chain/64`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-sample timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    iter_called: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_called = true;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; CLI filtering and
    /// criterion's flag set are not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let warm_up = self.warm_up_time;
        run_benchmark(name, sample_size, warm_up, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: grow the iteration count until the warm-up budget is spent,
    // so each timed sample is long enough to be measurable.
    let mut iters: u64 = 1;
    let mut spent = Duration::ZERO;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            iter_called: false,
        };
        f(&mut b);
        // Fail loudly on unsupported usage instead of spinning forever
        // with elapsed pinned at zero.
        assert!(
            b.iter_called,
            "benchmark {name:?}: closure returned without calling Bencher::iter"
        );
        spent += b.elapsed;
        if spent >= warm_up {
            break;
        }
        if b.elapsed < warm_up / 20 {
            iters = iters.saturating_mul(2);
        }
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            iter_called: false,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>11}/s", human_count(n as f64 * 1e9 / median))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>10}B/s", human_count(n as f64 * 1e9 / median))
        }
        None => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        human_time(min),
        human_time(median),
        human_time(max)
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.1} ")
    } else if x < 1e6 {
        format!("{:.2} K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2} M", x / 1e6)
    } else {
        format!("{:.2} G", x / 1e9)
    }
}

/// Mirrors criterion's macro: bundles benchmark functions into a group
/// runner invoked by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast_criterion();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
